/**
 * @file
 * Wire-protocol tests for the tracing surface: the `option trace-id`
 * request line (strict parse, fingerprint neutrality, byte identity
 * for untraced frames), the stats-line trace-id echo, the `prom`
 * stats argument, and the DUMP frame pair that scrapes the flight
 * recorder.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/flight_recorder.hh"
#include "obs/span.hh"
#include "service/protocol.hh"
#include "trace/paper_examples.hh"
#include "trace/trace_io.hh"

namespace jitsched {
namespace {

ServiceRequest
exampleRequest()
{
    ServiceRequest req;
    req.id = 9;
    req.policy = "iar";
    req.workload = figure1Workload();
    return req;
}

TEST(ProtocolTrace, TraceIdOptionRoundTrips)
{
    ServiceRequest req = exampleRequest();
    req.traceId = 0xdeadbeefULL;
    const std::string text = requestText(req);
    EXPECT_NE(text.find("option trace-id deadbeef\n"),
              std::string::npos)
        << text;

    std::istringstream is(text);
    std::string error;
    const auto back = tryReadRequest(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->traceId, 0xdeadbeefULL);
}

TEST(ProtocolTrace, UntracedRequestsStayByteIdentical)
{
    // A zero trace id emits no option line at all: frames from
    // pre-tracing builds and untraced clients are indistinguishable,
    // byte for byte.
    const ServiceRequest req = exampleRequest();
    const std::string text = requestText(req);
    EXPECT_EQ(text.find("trace-id"), std::string::npos) << text;

    std::istringstream is(text);
    const auto back = tryReadRequest(is);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->traceId, 0u);
}

TEST(ProtocolTrace, MalformedTraceIdOptionIsRejected)
{
    const std::string payload = [&] {
        std::ostringstream os;
        writeWorkload(os, figure1Workload());
        return os.str();
    }();
    for (const char *bad : {"0", "0000", "xyz", "0xab", "-1",
                            "11111111111111111"}) {
        std::istringstream is("jitsched-request 1\n"
                              "policy iar\n"
                              "option trace-id " +
                              std::string(bad) +
                              "\n"
                              "payload\n" +
                              payload + "end\n");
        std::string error;
        EXPECT_FALSE(tryReadRequest(is, &error).has_value()) << bad;
        EXPECT_NE(error.find("trace-id"), std::string::npos) << error;
    }
}

TEST(ProtocolTrace, TraceIdIsFingerprintNeutral)
{
    // The trace id is observability metadata: two requests that
    // differ only in trace id must hash (and compare) the same, or
    // tracing would split the admission queue's dedup classes.
    ServiceRequest plain = exampleRequest();
    ServiceRequest traced = exampleRequest();
    traced.traceId = obs::mintTraceId();
    EXPECT_EQ(requestFingerprint(plain), requestFingerprint(traced));
    EXPECT_EQ(plain.options, traced.options);
}

TEST(ProtocolTrace, StatsLineEchoesTheTraceId)
{
    ServiceResponse resp;
    resp.id = 4;
    resp.ok = true;
    resp.stats.queueNs = 10;
    resp.stats.solveNs = 20;
    resp.stats.traceId = 0x1a2bULL;
    const std::string text = responseText(resp, true);
    EXPECT_NE(text.find(" trace-id 1a2b\n"), std::string::npos)
        << text;

    std::istringstream is(text);
    std::string error;
    const auto back = tryReadResponse(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->stats.traceId, 0x1a2bULL);
    EXPECT_EQ(back->stats.queueNs, 10);
    EXPECT_EQ(back->stats.solveNs, 20);

    // Untraced responses keep the pre-tracing stats line.
    resp.stats.traceId = 0;
    EXPECT_EQ(responseText(resp, true).find("trace-id"),
              std::string::npos);
}

TEST(ProtocolTrace, BadStatsTraceIdIsRejected)
{
    std::istringstream is("jitsched-response 4\n"
                          "status ok\n"
                          "lower-bound 0\n"
                          "stats cache-hits 0 cache-misses 0 "
                          "queue-ns 1 solve-ns 2 trace-id 0\n"
                          "end\n");
    std::string error;
    EXPECT_FALSE(tryReadResponse(is, &error).has_value());
    EXPECT_NE(error.find("trace-id"), std::string::npos) << error;
}

TEST(ProtocolTrace, StatsPromArgumentRoundTrips)
{
    StatsRequest req;
    req.id = 5;
    req.prom = true;
    EXPECT_EQ(statsRequestText(req), "jitsched-stats 5 prom\nend\n");

    std::istringstream is(statsRequestText(req));
    std::string error;
    const auto back = tryReadStatsRequest(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->id, 5u);
    EXPECT_TRUE(back->prom);

    // Without the argument the flag stays off.
    std::istringstream plain("jitsched-stats 5\nend\n");
    const auto p = tryReadStatsRequest(plain);
    ASSERT_TRUE(p.has_value());
    EXPECT_FALSE(p->prom);

    // Unknown arguments are rejected, not ignored.
    std::istringstream bad("jitsched-stats 5 json\nend\n");
    EXPECT_FALSE(tryReadStatsRequest(bad, &error).has_value());
    EXPECT_NE(error.find("json"), std::string::npos) << error;
}

TEST(ProtocolTrace, PromSnapshotLinesSurviveTheStatsResponse)
{
    // Exposition lines start with '#' — the comment character of the
    // rest of the protocol.  The snapshot block must carry them raw.
    const std::string prom_text =
        "# TYPE jitsched_frames_total counter\n"
        "jitsched_frames_total 7\n";
    const StatsResponse resp = makeStatsResponse(6, prom_text, true);
    ASSERT_TRUE(resp.ok);
    EXPECT_TRUE(resp.prom);
    ASSERT_EQ(resp.lines.size(), 2u);

    const std::string text = statsResponseText(resp);
    EXPECT_NE(text.find("format prom\n"), std::string::npos) << text;

    std::istringstream is(text);
    std::string error;
    const auto back = tryReadStatsResponse(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_TRUE(back->ok);
    EXPECT_TRUE(back->prom);
    ASSERT_EQ(back->lines.size(), 2u);
    EXPECT_EQ(back->lines[0],
              "# TYPE jitsched_frames_total counter");
    EXPECT_EQ(back->lines[1], "jitsched_frames_total 7");
}

TEST(ProtocolTrace, DumpRequestRoundTrips)
{
    DumpRequest req;
    req.id = 11;
    EXPECT_EQ(dumpRequestText(req), "jitsched-dump 11\nend\n");
    EXPECT_TRUE(isDumpRequestFrame(dumpRequestText(req)));
    EXPECT_FALSE(isDumpRequestFrame("jitsched-stats 11\nend\n"));

    std::istringstream is(dumpRequestText(req));
    std::string error;
    const auto back = tryReadDumpRequest(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->id, 11u);

    // A body between header and `end` is a framing error.
    std::istringstream bad("jitsched-dump 11\nrecord x\nend\n");
    EXPECT_FALSE(tryReadDumpRequest(bad, &error).has_value());
    EXPECT_NE(error.find("body"), std::string::npos) << error;
}

TEST(ProtocolTrace, DumpResponseRoundTripsRecords)
{
    obs::FlightRecord traced;
    traced.traceId = 0xbeefULL;
    traced.requestId = 1;
    traced.policy = "iar";
    traced.status = "ok";
    traced.queueNs = 100;
    traced.solveNs = 200;
    traced.bytes = 300;
    traced.hops = 2;
    obs::FlightRecord bare; // untraced, empty policy/status
    bare.requestId = 2;

    const DumpResponse resp =
        makeDumpResponse(12, {traced, bare});
    ASSERT_TRUE(resp.ok);

    std::istringstream is(dumpResponseText(resp));
    std::string error;
    const auto back = tryReadDumpResponse(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_TRUE(back->ok);
    ASSERT_EQ(back->records.size(), 2u);
    EXPECT_EQ(back->records[0].traceId, 0xbeefULL);
    EXPECT_EQ(back->records[0].policy, "iar");
    EXPECT_EQ(back->records[0].status, "ok");
    EXPECT_EQ(back->records[0].queueNs, 100);
    EXPECT_EQ(back->records[0].solveNs, 200);
    EXPECT_EQ(back->records[0].bytes, 300u);
    EXPECT_EQ(back->records[0].hops, 2u);
    // `trace 0` and `-` placeholders decode back to the zero values.
    EXPECT_EQ(back->records[1].traceId, 0u);
    EXPECT_EQ(back->records[1].policy, "");
    EXPECT_EQ(back->records[1].status, "");
}

TEST(ProtocolTrace, DumpResponseErrorRoundTrips)
{
    DumpResponse resp;
    resp.id = 13;
    resp.ok = false;
    resp.code = errcode::unavailable;
    resp.error = "recorder disabled";

    std::istringstream is(dumpResponseText(resp));
    std::string error;
    const auto back = tryReadDumpResponse(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_FALSE(back->ok);
    EXPECT_EQ(back->code, errcode::unavailable);
    EXPECT_EQ(back->error, "recorder disabled");
    EXPECT_TRUE(back->records.empty());
}

TEST(ProtocolTrace, DumpResponseRecordCountMustMatch)
{
    std::istringstream is(
        "jitsched-dump-response 14\n"
        "status ok\n"
        "records 2\n"
        "record trace 0 request 1 policy - status - queue-ns 0 "
        "solve-ns 0 bytes 0 hops 0\n"
        "end\n");
    std::string error;
    EXPECT_FALSE(tryReadDumpResponse(is, &error).has_value());
    EXPECT_NE(error.find("declared"), std::string::npos) << error;
}

TEST(ProtocolTrace, DumpResponseBadRecordTraceIsRejected)
{
    std::istringstream is(
        "jitsched-dump-response 15\n"
        "status ok\n"
        "records 1\n"
        "record trace zz request 1 policy - status - queue-ns 0 "
        "solve-ns 0 bytes 0 hops 0\n"
        "end\n");
    std::string error;
    EXPECT_FALSE(tryReadDumpResponse(is, &error).has_value());
    EXPECT_NE(error.find("trace id"), std::string::npos) << error;
}

} // anonymous namespace
} // namespace jitsched
