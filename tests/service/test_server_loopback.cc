/**
 * @file
 * Loopback integration tests for jitschedd's serving core: a real
 * TCP server on an ephemeral port, concurrent clients submitting a
 * mix of valid, malformed and duplicate requests.  Valid responses
 * must be byte-identical to direct library calls (modulo the
 * volatile stats line), malformed frames must get structured errors
 * without killing the connection, and duplicates must be answered
 * from the EvalCache.
 */

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/instruments.hh"
#include "service/client.hh"
#include "service/engine.hh"
#include "service/server.hh"
#include "trace/paper_examples.hh"
#include "trace/trace_io.hh"

namespace jitsched {
namespace {

/** Drop the volatile `stats` line; everything else is deterministic. */
std::string
stripStats(const std::string &frame)
{
    std::string out;
    std::istringstream is(frame);
    for (std::string line; std::getline(is, line);)
        if (line.rfind("stats ", 0) != 0)
            out += line + "\n";
    return out;
}

ServiceRequest
makeRequest(std::uint64_t id, const std::string &policy,
            Workload w)
{
    ServiceRequest req;
    req.id = id;
    req.policy = policy;
    req.workload = std::move(w);
    return req;
}

std::string
malformedFrame(std::uint64_t id)
{
    return "jitsched-request " + std::to_string(id) + "\n" +
           "policy iar\n"
           "payload\n"
           "workload broken\n"
           "levels not-a-number\n"
           "end\n";
}

class LoopbackTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        std::string error;
        ASSERT_TRUE(server_.start(&error)) << error;
        ASSERT_NE(server_.port(), 0);
    }

    /** What a direct library call answers for @p req (no stats). */
    std::string
    directAnswer(const ServiceRequest &req)
    {
        // A separate engine: the reference path must not share state
        // with the server under test.
        ServiceResponse resp = reference_.serve(req);
        resp.stats = {};
        return responseText(resp, /*include_stats=*/false);
    }

    ServiceEngine engine_;
    ServiceServer server_{engine_};
    ServiceEngine reference_;
};

TEST_F(LoopbackTest, SingleRequestMatchesDirectLibraryCall)
{
    const ServiceRequest req =
        makeRequest(11, "iar", figure1Workload());
    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server_.port(), &error))
        << error;
    const auto raw = client.callRaw(requestText(req), &error);
    ASSERT_TRUE(raw.has_value()) << error;
    EXPECT_EQ(stripStats(*raw), directAnswer(req));
}

TEST_F(LoopbackTest, StatsScrapeReturnsTheRegistrySnapshot)
{
    // Prime the registry key set the way jitschedd does at startup,
    // then serve one real request so the service counters move.
    obs::registerStandardInstruments(engine_.registry().names());
    EXPECT_EQ(server_.connectionsDropped(), 0u);

    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server_.port(), &error))
        << error;
    const auto raw = client.callRaw(
        requestText(makeRequest(21, "iar", figure1Workload())),
        &error);
    ASSERT_TRUE(raw.has_value()) << error;

    // STATS rides the same connection, after the solve.
    const auto stats = client.stats(22, &error);
    ASSERT_TRUE(stats.has_value()) << error;
    EXPECT_TRUE(stats->ok) << stats->code << " " << stats->error;
    EXPECT_EQ(stats->id, 22u);
    ASSERT_FALSE(stats->lines.empty());

    bool saw_frames = false, saw_solve_hist = false;
    std::uint64_t frames_served = 0;
    for (const std::string &line : stats->lines) {
        std::istringstream ls(line);
        std::string type, name;
        ls >> type >> name;
        if (name == "service.frames.served") {
            saw_frames = true;
            ls >> frames_served;
        }
        if (name == "service.solve_ns.iar")
            saw_solve_hist = true;
    }
    EXPECT_TRUE(saw_frames);
    EXPECT_TRUE(saw_solve_hist);
    // The registry is process-global, so other suites may have
    // contributed; this connection alone served at least one frame.
    EXPECT_GE(frames_served, 1u);

    // A second scrape still works — the connection survives STATS.
    const auto again = client.stats(23, &error);
    ASSERT_TRUE(again.has_value()) << error;
    EXPECT_TRUE(again->ok);
}

TEST_F(LoopbackTest, MalformedFrameGetsStructuredErrorAndKeepsConnection)
{
    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server_.port(), &error))
        << error;

    const auto raw = client.callRaw(malformedFrame(5), &error);
    ASSERT_TRUE(raw.has_value()) << error;
    std::istringstream is(*raw);
    const auto resp = tryReadResponse(is);
    ASSERT_TRUE(resp.has_value());
    EXPECT_FALSE(resp->ok);
    EXPECT_EQ(resp->code, errcode::invalidArgument);

    // The same connection still serves valid requests afterwards.
    const ServiceRequest req =
        makeRequest(6, "lower-bound", figure2Workload());
    const auto ok = client.call(req, &error);
    ASSERT_TRUE(ok.has_value()) << error;
    EXPECT_TRUE(ok->ok);
    EXPECT_EQ(ok->id, 6u);
}

TEST_F(LoopbackTest, GarbageBeforeAnEndLineIsSurvivable)
{
    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server_.port(), &error))
        << error;
    const auto raw =
        client.callRaw("complete nonsense\nnot a frame\nend\n",
                       &error);
    ASSERT_TRUE(raw.has_value()) << error;
    std::istringstream is(*raw);
    const auto resp = tryReadResponse(is);
    ASSERT_TRUE(resp.has_value());
    EXPECT_FALSE(resp->ok);
    EXPECT_EQ(resp->code, errcode::invalidArgument);
}

TEST_F(LoopbackTest, DuplicateRequestsAreAnsweredFromTheCache)
{
    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server_.port(), &error))
        << error;

    const auto first = client.call(
        makeRequest(1, "iar", figure1Workload()), &error);
    ASSERT_TRUE(first.has_value()) << error;
    ASSERT_TRUE(first->ok);

    const auto second = client.call(
        makeRequest(2, "iar", figure1Workload()), &error);
    ASSERT_TRUE(second.has_value()) << error;
    ASSERT_TRUE(second->ok);
    EXPECT_GT(second->stats.cacheHits, 0u);
    EXPECT_EQ(second->stats.cacheMisses, 0u);
    EXPECT_EQ(second->sim.makespan, first->sim.makespan);
}

TEST_F(LoopbackTest, EightConcurrentClientsMixedTraffic)
{
    constexpr std::size_t kClients = 8;
    constexpr std::size_t kRequestsPerClient = 6;

    // Every client's valid answers must match these reference bytes.
    const ServiceRequest reqFig1Iar =
        makeRequest(101, "iar", figure1Workload());
    const ServiceRequest reqFig2Iar =
        makeRequest(102, "iar", figure2Workload());
    const ServiceRequest reqFig1Base =
        makeRequest(103, "base-only", figure1Workload());
    const std::string wantFig1Iar = directAnswer(reqFig1Iar);
    const std::string wantFig2Iar = directAnswer(reqFig2Iar);
    const std::string wantFig1Base = directAnswer(reqFig1Base);

    std::atomic<std::uint64_t> mismatches{0};
    std::atomic<std::uint64_t> malformed_ok{0};
    std::atomic<std::uint64_t> cache_hit_responses{0};
    std::atomic<std::uint64_t> transport_errors{0};

    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            ServiceClient client;
            std::string error;
            if (!client.connect("127.0.0.1", server_.port(),
                                &error)) {
                ++transport_errors;
                return;
            }
            for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
                const std::size_t kind = (c + i) % 4;
                if (kind == 3) {
                    // Malformed frame; expect a structured error and
                    // a connection that keeps working.
                    const auto raw = client.callRaw(
                        malformedFrame(900 + c), &error);
                    if (!raw) {
                        ++transport_errors;
                        return;
                    }
                    std::istringstream is(*raw);
                    const auto resp = tryReadResponse(is);
                    if (resp && !resp->ok &&
                        resp->code == errcode::invalidArgument)
                        ++malformed_ok;
                    continue;
                }
                // Valid traffic: three request shapes, repeated by
                // every client — duplicates by construction.
                const ServiceRequest &req =
                    kind == 0 ? reqFig1Iar
                    : kind == 1 ? reqFig2Iar
                                : reqFig1Base;
                const std::string &want =
                    kind == 0 ? wantFig1Iar
                    : kind == 1 ? wantFig2Iar
                                : wantFig1Base;
                const auto raw =
                    client.callRaw(requestText(req), &error);
                if (!raw) {
                    ++transport_errors;
                    return;
                }
                if (stripStats(*raw) != want)
                    ++mismatches;
                std::istringstream is(*raw);
                const auto resp = tryReadResponse(is);
                if (resp && resp->ok && resp->stats.cacheHits > 0)
                    ++cache_hit_responses;
            }
        });
    }
    for (std::thread &t : clients)
        t.join();

    EXPECT_EQ(transport_errors, 0u);
    EXPECT_EQ(mismatches, 0u);
    // Every malformed frame (kind == 3 per client/request grid) was
    // answered with INVALID_ARGUMENT.
    std::uint64_t expected_malformed = 0;
    for (std::size_t c = 0; c < kClients; ++c)
        for (std::size_t i = 0; i < kRequestsPerClient; ++i)
            expected_malformed += ((c + i) % 4 == 3) ? 1 : 0;
    EXPECT_EQ(malformed_ok, expected_malformed);
    // Three distinct evaluations served 36 valid requests: the rest
    // were answered from the cache, visible in the per-response
    // counters.
    EXPECT_GT(cache_hit_responses, 0u);
    EXPECT_GT(engine_.cache().hits(), 0u);

    // The server survived all of it.
    EXPECT_EQ(server_.framesServed(),
              kClients * kRequestsPerClient);
    const ServiceRequest probe =
        makeRequest(999, "iar", figure1Workload());
    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server_.port(), &error))
        << error;
    const auto raw = client.callRaw(requestText(probe), &error);
    ASSERT_TRUE(raw.has_value()) << error;
    EXPECT_EQ(stripStats(*raw), directAnswer(probe));
}

TEST_F(LoopbackTest, StopIsIdempotentAndRefusesNewWork)
{
    server_.stop();
    server_.stop();
    ServiceClient client;
    std::string error;
    EXPECT_FALSE(
        client.connect("127.0.0.1", server_.port(), &error));
}

TEST_F(LoopbackTest, StopDoesNotHangOnIdleConnections)
{
    // Idle clients that connect and never send (or hang up) used to
    // pin stop() forever: handlers blocked in read(2) were joined
    // but their sockets never shut down.
    std::vector<std::unique_ptr<ServiceClient>> idlers;
    std::string error;
    for (int i = 0; i < 3; ++i) {
        auto c = std::make_unique<ServiceClient>();
        ASSERT_TRUE(c->connect("127.0.0.1", server_.port(), &error))
            << error;
        idlers.push_back(std::move(c));
    }
    // One of them serves a request first, guaranteeing at least one
    // connection is parked inside a handler's read, not just queued.
    const auto resp = idlers[0]->call(
        makeRequest(1, "iar", figure1Workload()), &error);
    ASSERT_TRUE(resp.has_value()) << error;

    std::promise<void> stopped;
    auto done = stopped.get_future();
    std::thread stopper([&] {
        server_.stop();
        stopped.set_value();
    });
    EXPECT_EQ(done.wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "stop() hangs while idle clients hold connections";
    stopper.join();
}

TEST(ServiceServerLimits, OversizedFrameGetsErrorAndDisconnect)
{
    ServiceEngine engine;
    ServerConfig cfg;
    cfg.maxFrameBytes = 1024;
    ServiceServer server(engine, cfg);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServiceClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error))
        << error;
    // Way past the cap with no `end` line in sight: the server must
    // answer a structured error instead of buffering forever, then
    // drop the connection (it cannot resynchronize).
    std::string flood;
    while (flood.size() < 4096)
        flood += "option padding padding\n";
    const auto raw = client.callRaw(flood, &error);
    ASSERT_TRUE(raw.has_value()) << error;
    std::istringstream is(*raw);
    const auto resp = tryReadResponse(is);
    ASSERT_TRUE(resp.has_value());
    EXPECT_FALSE(resp->ok);
    EXPECT_EQ(resp->code, errcode::invalidArgument);
    EXPECT_NE(resp->error.find("exceeds"), std::string::npos)
        << resp->error;

    EXPECT_FALSE(client.callRaw("jitsched-request 1\nend\n", &error)
                     .has_value());
    server.stop();
}

TEST(ServiceServerLimits, NewlineFreeStreamIsBounded)
{
    // A stream with no newline at all exercises the LineReader cap
    // rather than the frame accumulator.
    ServiceEngine engine;
    ServerConfig cfg;
    cfg.maxFrameBytes = 1024;
    ServiceServer server(engine, cfg);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServiceClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error))
        << error;
    const auto raw =
        client.callRaw(std::string(8192, 'x'), &error);
    ASSERT_TRUE(raw.has_value()) << error;
    std::istringstream is(*raw);
    const auto resp = tryReadResponse(is);
    ASSERT_TRUE(resp.has_value());
    EXPECT_FALSE(resp->ok);
    EXPECT_EQ(resp->code, errcode::invalidArgument);
    server.stop();
}

TEST_F(LoopbackTest, PingIsAnsweredInline)
{
    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server_.port(), &error))
        << error;
    EXPECT_TRUE(client.ping(7, &error)) << error;

    // A ping is a framing no-op: scheduling requests on the same
    // connection keep working around it.
    const ServiceRequest req =
        makeRequest(8, "iar", figure1Workload());
    const auto raw = client.callRaw(requestText(req), &error);
    ASSERT_TRUE(raw.has_value()) << error;
    EXPECT_EQ(stripStats(*raw), directAnswer(req));
    EXPECT_TRUE(client.ping(9, &error)) << error;
}

TEST(ServiceServerLifecycle, RestartComesBackOnTheSamePort)
{
    // The contract the cluster layer's backend bounce rests on: a
    // stopped server restarts on the port its first bind chose, with
    // its counters intact.
    ServiceEngine engine;
    ServiceServer server(engine);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    const std::uint16_t port = server.port();
    ASSERT_NE(port, 0);

    EXPECT_FALSE(server.start(&error))
        << "second start while running must refuse";

    {
        ServiceClient client;
        ASSERT_TRUE(client.connect("127.0.0.1", port, &error))
            << error;
        EXPECT_TRUE(client.ping(1, &error)) << error;
    }
    const std::uint64_t frames_before_stop = server.framesServed();
    EXPECT_GE(frames_before_stop, 1u);

    server.stop();
    {
        ClientConfig cfg;
        cfg.connectTimeoutMs = 500;
        ServiceClient down(cfg);
        EXPECT_FALSE(down.connect("127.0.0.1", port, &error))
            << "stopped server still accepts connections";
    }

    ASSERT_TRUE(server.start(&error)) << error;
    EXPECT_EQ(server.port(), port);

    ServiceClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", port, &error)) << error;
    const auto raw = client.callRaw(
        requestText(makeRequest(2, "iar", figure1Workload())),
        &error);
    ASSERT_TRUE(raw.has_value()) << error;
    EXPECT_GE(server.framesServed(), frames_before_stop + 1);
    server.stop();
}

TEST(ServiceServerLifecycle, RestartSurvivesRepeatedBounces)
{
    ServiceEngine engine;
    ServiceServer server(engine);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    const std::uint16_t port = server.port();

    for (int round = 0; round < 3; ++round) {
        server.stop();
        ASSERT_TRUE(server.start(&error))
            << "round " << round << ": " << error;
        ASSERT_EQ(server.port(), port) << "round " << round;

        ServiceClient client;
        ASSERT_TRUE(client.connect("127.0.0.1", port, &error))
            << error;
        EXPECT_TRUE(client.ping(100 + round, &error)) << error;
    }
    server.stop();
}

} // anonymous namespace
} // namespace jitsched
