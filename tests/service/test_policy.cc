/**
 * @file
 * Policy-registry tests: the eight built-in policies resolve by name
 * and produce sane outcomes on the paper's worked example — schedules
 * whose make-spans respect the lower bound, an A* that is at least as
 * good as IAR, and explicit refusals when A*'s budget is tiny.
 */

#include <gtest/gtest.h>

#include "exec/batch_eval.hh"
#include "exec/eval_cache.hh"
#include "exec/thread_pool.hh"
#include "service/policy.hh"
#include "trace/paper_examples.hh"

namespace jitsched {
namespace {

class PolicyTest : public ::testing::Test
{
  protected:
    PolicyOutcome
    run(const std::string &name, const Workload &w,
        const ServiceOptions &opts = {})
    {
        const SchedulerPolicy *p =
            PolicyRegistry::builtin().find(name);
        EXPECT_NE(p, nullptr) << name;
        return p->run(w, opts, eval_);
    }

    ThreadPool pool_{2};
    EvalCache cache_;
    BatchEvaluator eval_{pool_, &cache_};
};

TEST_F(PolicyTest, BuiltinRegistryHoldsTheEightPolicies)
{
    const PolicyRegistry &reg = PolicyRegistry::builtin();
    EXPECT_EQ(reg.size(), 8u);
    const std::vector<std::string> expected = {
        "astar", "astar-par", "base-only", "iar",
        "jikes", "lower-bound", "opt-only", "v8"};
    EXPECT_EQ(reg.names(), expected);
    for (const std::string &name : expected) {
        const SchedulerPolicy *p = reg.find(name);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_EQ(p->name(), name);
        EXPECT_NE(std::string(p->describe()), "");
    }
    EXPECT_EQ(reg.find("no-such-policy"), nullptr);
}

TEST_F(PolicyTest, StaticPoliciesRespectTheLowerBound)
{
    const Workload w = figure1Workload();
    for (const std::string name : {"iar", "base-only", "opt-only"}) {
        SCOPED_TRACE(name);
        const PolicyOutcome out = run(name, w);
        EXPECT_TRUE(out.ok);
        EXPECT_TRUE(out.hasSchedule);
        ASSERT_TRUE(out.hasSim);
        EXPECT_GT(out.lowerBound, 0);
        EXPECT_GE(out.sim.makespan, out.lowerBound);
    }
}

TEST_F(PolicyTest, LowerBoundPolicyOmitsTheSchedule)
{
    const PolicyOutcome out = run("lower-bound", figure1Workload());
    EXPECT_TRUE(out.ok);
    EXPECT_FALSE(out.hasSchedule);
    EXPECT_FALSE(out.hasSim);
    EXPECT_GT(out.lowerBound, 0);
}

TEST_F(PolicyTest, AStarIsAtLeastAsGoodAsIar)
{
    const Workload w = figure2Workload();
    const PolicyOutcome iar = run("iar", w);
    const PolicyOutcome astar = run("astar", w);
    ASSERT_TRUE(astar.ok) << astar.error;
    ASSERT_TRUE(astar.hasSim);
    EXPECT_LE(astar.sim.makespan, iar.sim.makespan);
    EXPECT_GE(astar.sim.makespan, astar.lowerBound);
}

TEST_F(PolicyTest, AStarRefusesExplicitlyWhenBudgetIsTiny)
{
    ServiceOptions opts;
    opts.astarMaxExpansions = 1;
    const PolicyOutcome out =
        run("astar", figure2Workload(), opts);
    EXPECT_FALSE(out.ok);
    EXPECT_FALSE(out.error.empty());
}

TEST_F(PolicyTest, AStarParMatchesAStarAtEveryWorkerCount)
{
    const Workload w = figure2Workload();
    const PolicyOutcome seq = run("astar", w);
    ASSERT_TRUE(seq.ok) << seq.error;
    ASSERT_TRUE(seq.hasSim);
    for (const std::size_t threads : {1u, 2u, 8u}) {
        SCOPED_TRACE(threads);
        ServiceOptions opts;
        opts.astarThreads = threads;
        const PolicyOutcome par = run("astar-par", w, opts);
        ASSERT_TRUE(par.ok) << par.error;
        ASSERT_TRUE(par.hasSchedule);
        ASSERT_TRUE(par.hasSim);
        EXPECT_EQ(par.sim.makespan, seq.sim.makespan);
        EXPECT_EQ(par.lowerBound, seq.lowerBound);
    }
}

TEST_F(PolicyTest, AStarParNeverRefusesUnderATinyBudget)
{
    // Where the sequential policy refuses, the anytime policy
    // answers with its incumbent (the IAR seed or better) — a valid
    // schedule whose make-span still respects the lower bound.
    ServiceOptions opts;
    opts.astarMaxExpansions = 1;
    opts.astarThreads = 2;
    const PolicyOutcome out =
        run("astar-par", figure2Workload(), opts);
    ASSERT_TRUE(out.ok) << out.error;
    ASSERT_TRUE(out.hasSchedule);
    ASSERT_TRUE(out.hasSim);
    EXPECT_GE(out.sim.makespan, out.lowerBound);
}

TEST_F(PolicyTest, OnlinePoliciesProduceInducedSchedules)
{
    const Workload w = figure2Workload();
    for (const std::string name : {"jikes", "v8"}) {
        SCOPED_TRACE(name);
        const PolicyOutcome out = run(name, w);
        EXPECT_TRUE(out.ok);
        EXPECT_TRUE(out.hasSchedule);
        ASSERT_TRUE(out.hasSim);
        EXPECT_GT(out.sim.makespan, 0);
    }
}

TEST_F(PolicyTest, PoliciesAreDeterministic)
{
    const Workload w = figure2Workload();
    for (const std::string name :
         {"iar", "astar", "base-only", "opt-only", "jikes", "v8"}) {
        SCOPED_TRACE(name);
        const PolicyOutcome a = run(name, w);
        const PolicyOutcome b = run(name, w);
        ASSERT_EQ(a.ok, b.ok);
        EXPECT_EQ(a.lowerBound, b.lowerBound);
        if (a.hasSim)
            EXPECT_EQ(a.sim.makespan, b.sim.makespan);
        if (a.hasSchedule)
            EXPECT_EQ(a.schedule.events(), b.schedule.events());
    }
}

TEST_F(PolicyTest, StaticEvaluationsGoThroughTheSharedCache)
{
    const Workload w = figure1Workload();
    run("iar", w);
    const std::uint64_t misses_after_first = cache_.misses();
    run("iar", w);
    EXPECT_GT(cache_.hits(), 0u);
    EXPECT_EQ(cache_.misses(), misses_after_first);
}

} // anonymous namespace
} // namespace jitsched
