/**
 * @file
 * The request-level result cache (service/result_cache.hh): key
 * canonicalization, LRU eviction determinism, singleflight
 * collapsing with deadline-respecting waiters, snapshot round trips
 * and strict rejection of damaged snapshot files, plus a TSan-aimed
 * concurrency hammer (this suite runs under the `service` label the
 * TSan job builds with -fsanitize=thread).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/result_cache.hh"
#include "trace/paper_examples.hh"

namespace jitsched {
namespace {

ServiceRequest
makeRequest(int compile_cores = 1)
{
    ServiceRequest req;
    req.id = 1;
    req.policy = "iar";
    req.options.compileCores = compile_cores;
    req.workload = figure1Workload();
    return req;
}

std::string
tempPath(const char *tag)
{
    return testing::TempDir() + "result_cache_" + tag + "_" +
           std::to_string(::getpid()) + ".snapshot";
}

// --- Key canonicalization -----------------------------------------

TEST(ResultCacheKey, IgnoresIdDeadlineAndTraceId)
{
    ServiceRequest a = makeRequest();
    ServiceRequest b = makeRequest();
    b.id = 999;
    b.traceId = 0xabcdef;
    b.options.deadlineMs = 1500;
    EXPECT_EQ(ResultCache::keyMaterial(a),
              ResultCache::keyMaterial(b));
    EXPECT_EQ(ResultCache::keyHash(ResultCache::keyMaterial(a)),
              ResultCache::keyHash(ResultCache::keyMaterial(b)));
}

TEST(ResultCacheKey, IgnoresDormantJitterSeed)
{
    // writeRequest() omits jitter-seed when sigma is 0 (the
    // simulator never reads it); the key follows the same rule.
    ServiceRequest a = makeRequest();
    ServiceRequest b = makeRequest();
    a.options.jitterSeed = 1;
    b.options.jitterSeed = 42;
    EXPECT_EQ(ResultCache::keyMaterial(a),
              ResultCache::keyMaterial(b));

    a.options.jitterSigma = 0.5;
    b.options.jitterSigma = 0.5;
    EXPECT_NE(ResultCache::keyMaterial(a),
              ResultCache::keyMaterial(b));
}

TEST(ResultCacheKey, SemanticFieldsSeparateEntries)
{
    const ServiceRequest base = makeRequest();

    ServiceRequest other_policy = makeRequest();
    other_policy.policy = "astar";
    EXPECT_NE(ResultCache::keyMaterial(base),
              ResultCache::keyMaterial(other_policy));

    ServiceRequest other_cores = makeRequest(2);
    EXPECT_NE(ResultCache::keyMaterial(base),
              ResultCache::keyMaterial(other_cores));

    // `threads` stays in the key: parallel A* promises cost
    // determinism, not schedule identity.
    ServiceRequest threaded = makeRequest();
    threaded.options.astarThreads = 4;
    EXPECT_NE(ResultCache::keyMaterial(base),
              ResultCache::keyMaterial(threaded));

    ServiceRequest other_workload = makeRequest();
    other_workload.workload = figure2Workload();
    EXPECT_NE(ResultCache::keyMaterial(base),
              ResultCache::keyMaterial(other_workload));
}

// --- Store + LRU --------------------------------------------------

TEST(ResultCache, DisabledCacheAlwaysBypasses)
{
    ResultCache cache; // capacityBytes = 0
    EXPECT_FALSE(cache.enabled());
    const auto probe = cache.begin(makeRequest());
    EXPECT_EQ(probe.kind, ResultCache::Probe::Kind::Bypass);
    EXPECT_EQ(cache.counters().hits, 0u);
    EXPECT_EQ(cache.counters().misses, 0u);
}

TEST(ResultCache, LeaderPublishesThenHits)
{
    ResultCacheConfig cfg;
    cfg.capacityBytes = 1 << 20;
    ResultCache cache(cfg);

    const auto lead = cache.begin(makeRequest());
    ASSERT_EQ(lead.kind, ResultCache::Probe::Kind::Leader);
    cache.publish(lead, true, "makespan 11\n");

    const auto hit = cache.begin(makeRequest());
    ASSERT_EQ(hit.kind, ResultCache::Probe::Kind::Hit);
    EXPECT_EQ(hit.body, "makespan 11\n");
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.counters().hits, 1u);
    EXPECT_EQ(cache.counters().misses, 1u);
    EXPECT_EQ(cache.counters().insertions, 1u);
}

TEST(ResultCache, ErrorBodiesAreNotStored)
{
    ResultCacheConfig cfg;
    cfg.capacityBytes = 1 << 20;
    ResultCache cache(cfg);

    const auto lead = cache.begin(makeRequest());
    ASSERT_EQ(lead.kind, ResultCache::Probe::Kind::Leader);
    cache.publish(lead, false, "status error UNAVAILABLE\n");

    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.begin(makeRequest()).kind,
              ResultCache::Probe::Kind::Leader);
}

TEST(ResultCache, EvictionIsDeterministicLru)
{
    // One shard so the LRU order is global; capacity sized to hold
    // exactly two of the three equally-charged entries.
    const std::string body(100, 'x');
    const std::size_t charge =
        ResultCache::keyMaterial(makeRequest(1)).size() +
        body.size() + 64;
    ResultCacheConfig cfg;
    cfg.shards = 1;
    cfg.capacityBytes = 2 * charge + charge / 2;
    cfg.maxEntryBytes = 2 * charge;
    ResultCache cache(cfg);

    for (int cores : {1, 2}) {
        const auto lead = cache.begin(makeRequest(cores));
        ASSERT_EQ(lead.kind, ResultCache::Probe::Kind::Leader);
        cache.publish(lead, true, body);
    }
    // Touch entry #1 so entry #2 is the LRU tail...
    EXPECT_EQ(cache.begin(makeRequest(1)).kind,
              ResultCache::Probe::Kind::Hit);
    // ...and inserting #3 must evict exactly #2.
    const auto lead3 = cache.begin(makeRequest(3));
    ASSERT_EQ(lead3.kind, ResultCache::Probe::Kind::Leader);
    cache.publish(lead3, true, body);

    EXPECT_EQ(cache.counters().evictions, 1u);
    EXPECT_EQ(cache.begin(makeRequest(1)).kind,
              ResultCache::Probe::Kind::Hit);
    EXPECT_EQ(cache.begin(makeRequest(3)).kind,
              ResultCache::Probe::Kind::Hit);
    EXPECT_EQ(cache.begin(makeRequest(2)).kind,
              ResultCache::Probe::Kind::Leader);
}

TEST(ResultCache, OversizedBodiesServeButNeverStore)
{
    ResultCacheConfig cfg;
    cfg.capacityBytes = 4096;
    cfg.maxEntryBytes = 256;
    ResultCache cache(cfg);

    const auto lead = cache.begin(makeRequest());
    ASSERT_EQ(lead.kind, ResultCache::Probe::Kind::Leader);
    cache.publish(lead, true, std::string(1024, 'y'));

    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.counters().oversized, 1u);
}

// --- Singleflight -------------------------------------------------

TEST(ResultCache, FollowersCollapseOntoOneSolve)
{
    ResultCacheConfig cfg;
    cfg.capacityBytes = 1 << 20;
    ResultCache cache(cfg);

    const auto lead = cache.begin(makeRequest());
    ASSERT_EQ(lead.kind, ResultCache::Probe::Kind::Leader);

    constexpr int kFollowers = 6;
    std::atomic<int> registered{0};
    std::atomic<int> served_ok{0};
    std::vector<std::thread> threads;
    threads.reserve(kFollowers);
    for (int i = 0; i < kFollowers; ++i) {
        threads.emplace_back([&] {
            const auto probe = cache.begin(makeRequest());
            ASSERT_EQ(probe.kind,
                      ResultCache::Probe::Kind::Follower);
            registered.fetch_add(1);
            bool ok = false;
            std::string body;
            const auto outcome = cache.waitFollower(
                probe, std::nullopt, &ok, &body);
            if (outcome == ResultCache::WaitOutcome::Ready && ok &&
                body == "makespan 11\n")
                served_ok.fetch_add(1);
        });
    }
    while (registered.load() < kFollowers)
        std::this_thread::yield();
    cache.publish(lead, true, "makespan 11\n");
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(served_ok.load(), kFollowers);
    EXPECT_EQ(cache.counters().collapsed,
              static_cast<std::uint64_t>(kFollowers));
    EXPECT_EQ(cache.counters().insertions, 1u);
}

TEST(ResultCache, FollowerDeadlineIsRespected)
{
    ResultCacheConfig cfg;
    cfg.capacityBytes = 1 << 20;
    ResultCache cache(cfg);

    const auto lead = cache.begin(makeRequest());
    ASSERT_EQ(lead.kind, ResultCache::Probe::Kind::Leader);
    const auto follower = cache.begin(makeRequest());
    ASSERT_EQ(follower.kind, ResultCache::Probe::Kind::Follower);

    // A deadline already in the past: the wait must return Timeout
    // immediately instead of blocking on the (never-publishing)
    // leader.
    bool ok = false;
    std::string body;
    EXPECT_EQ(cache.waitFollower(follower,
                                 std::chrono::steady_clock::now() -
                                     std::chrono::milliseconds(1),
                                 &ok, &body),
              ResultCache::WaitOutcome::Timeout);
    EXPECT_EQ(cache.counters().collapseTimeouts, 1u);

    // The leader's publish must still work after the waiter left.
    cache.publish(lead, true, "makespan 11\n");
    EXPECT_EQ(cache.begin(makeRequest()).kind,
              ResultCache::Probe::Kind::Hit);
}

TEST(ResultCache, WaiterOverflowDegradesToBypass)
{
    ResultCacheConfig cfg;
    cfg.capacityBytes = 1 << 20;
    cfg.maxWaiters = 0; // no follower may queue
    ResultCache cache(cfg);

    const auto lead = cache.begin(makeRequest());
    ASSERT_EQ(lead.kind, ResultCache::Probe::Kind::Leader);
    const auto probe = cache.begin(makeRequest());
    EXPECT_EQ(probe.kind, ResultCache::Probe::Kind::Bypass);
    EXPECT_EQ(cache.counters().waiterOverflow, 1u);
    cache.publish(lead, true, "makespan 11\n");
}

// --- Snapshots ----------------------------------------------------

TEST(ResultCacheSnapshot, RoundTripPreservesEntriesAndLruOrder)
{
    const std::string path = tempPath("roundtrip");
    ResultCacheConfig cfg;
    cfg.capacityBytes = 1 << 20;
    ResultCache cache(cfg);
    for (int cores : {1, 2, 3}) {
        const auto lead = cache.begin(makeRequest(cores));
        ASSERT_EQ(lead.kind, ResultCache::Probe::Kind::Leader);
        cache.publish(lead, true,
                      "makespan 1" + std::to_string(cores) + "\n");
    }

    std::size_t entries = 0;
    std::string error;
    ASSERT_TRUE(cache.saveSnapshot(path, &error, &entries)) << error;
    EXPECT_EQ(entries, 3u);
    EXPECT_EQ(cache.counters().snapshotSaves, 1u);

    ResultCache reloaded(cfg);
    std::size_t loaded = 0;
    ASSERT_TRUE(reloaded.loadSnapshot(path, &error, &loaded))
        << error;
    EXPECT_EQ(loaded, 3u);
    EXPECT_EQ(reloaded.entries(), 3u);
    for (int cores : {1, 2, 3}) {
        const auto hit = reloaded.begin(makeRequest(cores));
        ASSERT_EQ(hit.kind, ResultCache::Probe::Kind::Hit);
        EXPECT_EQ(hit.body,
                  "makespan 1" + std::to_string(cores) + "\n");
    }
    std::remove(path.c_str());
}

TEST(ResultCacheSnapshot, VersionSkewIsRejectedWholesale)
{
    const std::string path = tempPath("skew");
    ResultCacheConfig cfg;
    cfg.capacityBytes = 1 << 20;
    ResultCache cache(cfg);
    const auto lead = cache.begin(makeRequest());
    cache.publish(lead, true, "makespan 11\n");
    ASSERT_TRUE(cache.saveSnapshot(path));

    // Bump the version token: the loader must refuse the whole file.
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    const std::size_t v = bytes.find("v1");
    ASSERT_NE(v, std::string::npos);
    bytes[v + 1] = '2';
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

    ResultCache reloaded(cfg);
    std::string error;
    EXPECT_FALSE(reloaded.loadSnapshot(path, &error));
    EXPECT_NE(error.find("magic/version"), std::string::npos)
        << error;
    EXPECT_EQ(reloaded.entries(), 0u);
    std::remove(path.c_str());
}

TEST(ResultCacheSnapshot, TruncationIsRejectedWholesale)
{
    const std::string path = tempPath("trunc");
    ResultCacheConfig cfg;
    cfg.capacityBytes = 1 << 20;
    ResultCache cache(cfg);
    for (int cores : {1, 2}) {
        const auto lead = cache.begin(makeRequest(cores));
        cache.publish(lead, true, "makespan 11\n");
    }
    ASSERT_TRUE(cache.saveSnapshot(path));

    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << bytes.substr(0, bytes.size() / 2);

    ResultCache reloaded(cfg);
    std::string error;
    EXPECT_FALSE(reloaded.loadSnapshot(path, &error));
    EXPECT_EQ(reloaded.entries(), 0u);
    std::remove(path.c_str());
}

TEST(ResultCacheSnapshot, CorruptPayloadFailsTheChecksum)
{
    const std::string path = tempPath("corrupt");
    ResultCacheConfig cfg;
    cfg.capacityBytes = 1 << 20;
    ResultCache cache(cfg);
    const auto lead = cache.begin(makeRequest());
    cache.publish(lead, true, "makespan 11\n");
    ASSERT_TRUE(cache.saveSnapshot(path));

    // Flip one payload byte without touching the structure.
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    const std::size_t at = bytes.find("makespan 11");
    ASSERT_NE(at, std::string::npos);
    bytes[at] = 'M';
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

    ResultCache reloaded(cfg);
    std::string error;
    EXPECT_FALSE(reloaded.loadSnapshot(path, &error));
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
    EXPECT_EQ(reloaded.entries(), 0u);
    std::remove(path.c_str());
}

TEST(ResultCacheSnapshot, MissingFileIsAnError)
{
    ResultCacheConfig cfg;
    cfg.capacityBytes = 1 << 20;
    ResultCache cache(cfg);
    std::string error;
    EXPECT_FALSE(cache.loadSnapshot(tempPath("missing"), &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

// --- Env parsing --------------------------------------------------

TEST(ResultCacheEnv, UnsetOrEmptyDisables)
{
    EXPECT_EQ(parseResultCacheMbEnv(nullptr), 0u);
    EXPECT_EQ(parseResultCacheMbEnv(""), 0u);
    EXPECT_EQ(parseResultCacheMbEnv("0"), 0u);
    EXPECT_EQ(parseResultCacheMbEnv("64"), 64u);
    EXPECT_EQ(parseResultCacheMbEnv(" 16 "), 16u);
}

// --- Concurrency hammer (TSan job) --------------------------------

TEST(ResultCacheConcurrency, HammerLeadersFollowersAndEviction)
{
    // A deliberately tiny cache over a small key space: every probe
    // races hits, flights, insertions and evictions across shards.
    ResultCacheConfig cfg;
    cfg.capacityBytes = 8192;
    cfg.shards = 4;
    ResultCache cache(cfg);
    constexpr int kThreads = 8;
    constexpr int kIters = 300;

    std::atomic<std::uint64_t> served{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                const int cores = 1 + (t + i) % 5;
                const auto probe =
                    cache.begin(makeRequest(cores));
                switch (probe.kind) {
                case ResultCache::Probe::Kind::Hit:
                    served.fetch_add(1);
                    break;
                case ResultCache::Probe::Kind::Leader:
                    cache.publish(probe, true,
                                  std::string(64, 'a' + cores));
                    break;
                case ResultCache::Probe::Kind::Follower: {
                    bool ok = false;
                    std::string body;
                    if (cache.waitFollower(
                            probe,
                            std::chrono::steady_clock::now() +
                                std::chrono::seconds(5),
                            &ok, &body) ==
                        ResultCache::WaitOutcome::Ready)
                        served.fetch_add(1);
                    break;
                }
                case ResultCache::Probe::Kind::Bypass:
                    break;
                }
                if (i % 64 == 0) {
                    (void)cache.entries();
                    (void)cache.bytes();
                    (void)cache.counters();
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    const auto counters = cache.counters();
    EXPECT_EQ(counters.hits + counters.collapsed, served.load());
    EXPECT_GT(counters.insertions, 0u);
}

} // anonymous namespace
} // namespace jitsched
