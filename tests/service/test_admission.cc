/**
 * @file
 * Admission-queue tests: futures always become ready, duplicate
 * requests ride the cache, overload is shed with RESOURCE_EXHAUSTED,
 * stale requests expire with DEADLINE_EXCEEDED, and shutdown answers
 * everything still pending.
 */

#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "service/admission.hh"
#include "service/engine.hh"
#include "trace/paper_examples.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

ServiceRequest
makeRequest(std::uint64_t id, const std::string &policy,
            Workload w)
{
    ServiceRequest req;
    req.id = id;
    req.policy = policy;
    req.workload = std::move(w);
    return req;
}

TEST(AdmissionQueue, ServesAValidRequest)
{
    ServiceEngine engine;
    AdmissionQueue queue(engine);
    auto future =
        queue.submit(makeRequest(1, "iar", figure1Workload()));
    const ServiceResponse resp = future.get();
    EXPECT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.id, 1u);
    EXPECT_EQ(resp.policy, "iar");
    EXPECT_TRUE(resp.hasSchedule);
    EXPECT_GE(resp.stats.queueNs, 0);
    EXPECT_GT(resp.stats.solveNs, 0);
    EXPECT_EQ(queue.processed(), 1u);
    EXPECT_EQ(queue.accepted(), 1u);
}

TEST(AdmissionQueue, EngineErrorsComeBackStructured)
{
    ServiceEngine engine;
    AdmissionQueue queue(engine);
    auto future = queue.submit(
        makeRequest(2, "no-such-policy", figure1Workload()));
    const ServiceResponse resp = future.get();
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.code, errcode::invalidArgument);
}

TEST(AdmissionQueue, DuplicateRequestsHitTheCache)
{
    ServiceEngine engine;
    AdmissionQueue queue(engine);
    const ServiceResponse first =
        queue.submit(makeRequest(1, "iar", figure1Workload())).get();
    const ServiceResponse second =
        queue.submit(makeRequest(2, "iar", figure1Workload())).get();
    ASSERT_TRUE(first.ok);
    ASSERT_TRUE(second.ok);
    // The repeat evaluation is answered from the EvalCache: the
    // response-embedded counters show hits and no new misses.
    EXPECT_GT(second.stats.cacheHits, 0u);
    EXPECT_EQ(second.stats.cacheMisses, 0u);
    // And the answers agree, as duplicates must.
    EXPECT_EQ(first.sim.makespan, second.sim.makespan);
    EXPECT_EQ(first.schedule.size(), second.schedule.size());
}

TEST(AdmissionQueue, ZeroDepthQueueShedsEverything)
{
    ServiceEngine engine;
    AdmissionConfig cfg;
    cfg.maxDepth = 0;
    AdmissionQueue queue(engine, cfg);
    const ServiceResponse resp =
        queue.submit(makeRequest(3, "iar", figure1Workload())).get();
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.code, errcode::resourceExhausted);
    EXPECT_EQ(queue.shed(), 1u);
    EXPECT_EQ(queue.accepted(), 0u);
}

TEST(AdmissionQueue, StaleRequestsExpire)
{
    ServiceEngine engine;
    AdmissionQueue queue(engine);
    // Occupy the worker with a real solve, then enqueue a request
    // whose deadline is already in the past when its turn comes.
    SyntheticConfig scfg;
    scfg.name = "occupy";
    scfg.numFunctions = 80;
    scfg.numCalls = 4000;
    auto slow =
        queue.submit(makeRequest(4, "iar", generateSynthetic(scfg)));
    ServiceRequest stale =
        makeRequest(5, "iar", figure1Workload());
    stale.options.deadlineMs = 0;
    const ServiceResponse resp = queue.submit(std::move(stale)).get();
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.code, errcode::deadlineExceeded);
    EXPECT_EQ(queue.expired(), 1u);
    EXPECT_TRUE(slow.get().ok);
}

TEST(AdmissionQueue, StopAnswersInsteadOfHanging)
{
    ServiceEngine engine;
    AdmissionQueue queue(engine);
    queue.stop();
    const ServiceResponse resp =
        queue.submit(makeRequest(6, "iar", figure1Workload())).get();
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.code, errcode::unavailable);
    queue.stop(); // idempotent
}

TEST(AdmissionQueue, ManyConcurrentSubmittersAllGetAnswers)
{
    ServiceEngine engine;
    AdmissionQueue queue(engine);
    std::vector<std::future<ServiceResponse>> futures;
    for (std::uint64_t i = 0; i < 32; ++i)
        futures.push_back(queue.submit(makeRequest(
            i + 1, i % 2 == 0 ? "iar" : "base-only",
            i % 4 < 2 ? figure1Workload() : figure2Workload())));
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const ServiceResponse resp = futures[i].get();
        EXPECT_TRUE(resp.ok) << resp.error;
        EXPECT_EQ(resp.id, i + 1);
    }
    EXPECT_EQ(queue.processed(), 32u);
}

} // anonymous namespace
} // namespace jitsched
