/**
 * @file
 * Wire-protocol tests: request/response round trips, option
 * validation, malformed frames, frame-end detection, and the request
 * fingerprint the admission queue and cache discipline rely on.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "service/protocol.hh"
#include "trace/paper_examples.hh"
#include "trace/trace_io.hh"

namespace jitsched {
namespace {

ServiceRequest
exampleRequest()
{
    ServiceRequest req;
    req.id = 42;
    req.policy = "iar";
    req.options.compileCores = 2;
    req.options.model = ModelKind::Default;
    req.options.jitterSigma = 0.25;
    req.options.jitterSeed = 7;
    req.options.astarMaxExpansions = 1000;
    req.options.astarMemoryMb = 32;
    req.options.astarThreads = 4;
    req.options.deadlineMs = 500;
    req.workload = figure1Workload();
    return req;
}

std::string
workloadText(const Workload &w)
{
    std::ostringstream os;
    writeWorkload(os, w);
    return os.str();
}

TEST(ServiceProtocol, RequestRoundTrip)
{
    const ServiceRequest req = exampleRequest();
    std::istringstream is(requestText(req));
    std::string error;
    const auto back = tryReadRequest(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->id, req.id);
    EXPECT_EQ(back->policy, req.policy);
    EXPECT_EQ(back->options, req.options);
    EXPECT_EQ(workloadText(back->workload),
              workloadText(req.workload));
}

TEST(ServiceProtocol, RequestDefaultsSurviveRoundTrip)
{
    ServiceRequest req;
    req.id = 1;
    req.policy = "lower-bound";
    req.workload = figure2Workload();
    std::istringstream is(requestText(req));
    const auto back = tryReadRequest(is);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->options, ServiceOptions{});
}

TEST(ServiceProtocol, UnknownOptionKeyIsRejected)
{
    std::istringstream is("jitsched-request 1\n"
                          "policy iar\n"
                          "option frobnicate 3\n"
                          "payload\n" +
                          workloadText(figure1Workload()) + "end\n");
    std::string error;
    EXPECT_FALSE(tryReadRequest(is, &error).has_value());
    EXPECT_NE(error.find("frobnicate"), std::string::npos) << error;
}

TEST(ServiceProtocol, BadOptionValueIsRejected)
{
    std::istringstream is("jitsched-request 1\n"
                          "policy iar\n"
                          "option compile-cores 0\n"
                          "payload\n" +
                          workloadText(figure1Workload()) + "end\n");
    std::string error;
    EXPECT_FALSE(tryReadRequest(is, &error).has_value());
    EXPECT_NE(error.find("compile-cores"), std::string::npos)
        << error;
}

TEST(ServiceProtocol, ThreadsOptionParsesAndStaysOffTheWireByDefault)
{
    // Parse: `option threads N` lands in astarThreads.
    std::istringstream is("jitsched-request 1\n"
                          "policy astar-par\n"
                          "option threads 8\n"
                          "payload\n" +
                          workloadText(figure1Workload()) + "end\n");
    const auto back = tryReadRequest(is);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->options.astarThreads, 8u);

    // Serialize: a default (unset) threads option emits no line, so
    // frames from clients that never mention threads are
    // byte-identical to what pre-astar-par builds produced.
    ServiceRequest req;
    req.id = 1;
    req.policy = "iar";
    req.workload = figure1Workload();
    EXPECT_EQ(requestText(req).find("option threads"),
              std::string::npos);
}

TEST(ServiceProtocol, ThreadsOptionRejectsZeroAndGarbage)
{
    for (const std::string bad : {"0", "-2", "4x", "many"}) {
        SCOPED_TRACE(bad);
        std::istringstream is("jitsched-request 1\n"
                              "policy astar-par\n"
                              "option threads " + bad + "\n"
                              "payload\n" +
                              workloadText(figure1Workload()) +
                              "end\n");
        std::string error;
        EXPECT_FALSE(tryReadRequest(is, &error).has_value());
        EXPECT_NE(error.find("threads"), std::string::npos) << error;
    }
}

TEST(ServiceProtocol, EndBeforePayloadIsRejected)
{
    std::istringstream is("jitsched-request 1\n"
                          "policy iar\n"
                          "end\n");
    std::string error;
    EXPECT_FALSE(tryReadRequest(is, &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST(ServiceProtocol, MalformedWorkloadPropagatesParseError)
{
    std::istringstream is("jitsched-request 9\n"
                          "policy iar\n"
                          "payload\n"
                          "workload broken\n"
                          "levels two\n"
                          "end\n");
    std::string error;
    EXPECT_FALSE(tryReadRequest(is, &error).has_value());
    EXPECT_NE(error.find("trace parse error"), std::string::npos)
        << error;
}

TEST(ServiceProtocol, OkResponseRoundTrip)
{
    ServiceResponse resp;
    resp.id = 7;
    resp.ok = true;
    resp.policy = "iar";
    resp.lowerBound = 10;
    resp.hasSim = true;
    resp.sim.makespan = 11;
    resp.sim.execEnd = 11;
    resp.sim.compileEnd = 5;
    resp.sim.totalBubble = 1;
    resp.sim.bubbleCount = 1;
    resp.sim.totalExec = 9;
    resp.sim.totalCompile = 5;
    resp.sim.callsAtLevel = {3, 1};
    resp.hasSchedule = true;
    resp.schedule = {{0, 0}, {1, 1}};
    resp.stats.cacheHits = 2;
    resp.stats.cacheMisses = 1;
    resp.stats.queueNs = 100;
    resp.stats.solveNs = 2000;

    std::istringstream is(responseText(resp));
    std::string error;
    const auto back = tryReadResponse(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_TRUE(back->ok);
    EXPECT_EQ(back->id, resp.id);
    EXPECT_EQ(back->policy, resp.policy);
    EXPECT_EQ(back->lowerBound, resp.lowerBound);
    ASSERT_TRUE(back->hasSim);
    EXPECT_EQ(back->sim.makespan, resp.sim.makespan);
    EXPECT_EQ(back->sim.callsAtLevel, resp.sim.callsAtLevel);
    ASSERT_TRUE(back->hasSchedule);
    ASSERT_EQ(back->schedule.size(), resp.schedule.size());
    EXPECT_EQ(back->schedule[1].func, resp.schedule[1].func);
    EXPECT_EQ(back->schedule[1].level, resp.schedule[1].level);
    EXPECT_EQ(back->stats.cacheHits, resp.stats.cacheHits);
    EXPECT_EQ(back->stats.solveNs, resp.stats.solveNs);
}

TEST(ServiceProtocol, ErrorResponseRoundTrip)
{
    const ServiceResponse resp = makeErrorResponse(
        3, errcode::resourceExhausted, "queue full; retry later");
    std::istringstream is(responseText(resp));
    const auto back = tryReadResponse(is);
    ASSERT_TRUE(back.has_value());
    EXPECT_FALSE(back->ok);
    EXPECT_EQ(back->code, errcode::resourceExhausted);
    EXPECT_EQ(back->error, "queue full; retry later");
}

TEST(ServiceProtocol, AbsurdScheduleSizeDoesNotThrow)
{
    // A rogue server declaring a huge schedule must not make the
    // client's reserve() throw; the frame fails as truncated instead.
    std::istringstream is("jitsched-response 1\n"
                          "status ok\n"
                          "schedule 9999999999999999\n"
                          "0 0\n");
    std::string error;
    EXPECT_FALSE(tryReadResponse(is, &error).has_value());
    EXPECT_NE(error.find("schedule truncated"), std::string::npos)
        << error;
}

TEST(ServiceProtocol, StatsLineIsTheOnlyVolatilePart)
{
    ServiceResponse resp = makeErrorResponse(
        1, errcode::invalidArgument, "nope");
    resp.stats.solveNs = 12345;
    const std::string with = responseText(resp, true);
    const std::string without = responseText(resp, false);
    EXPECT_NE(with.find("\nstats "), std::string::npos);
    EXPECT_EQ(without.find("\nstats "), std::string::npos);
    // Removing the stats line from the full frame recovers the
    // deterministic block exactly.
    std::string stripped;
    std::istringstream is(with);
    for (std::string line; std::getline(is, line);)
        if (line.rfind("stats ", 0) != 0)
            stripped += line + "\n";
    EXPECT_EQ(stripped, without);
}

TEST(ServiceProtocol, StatsRequestRoundTrip)
{
    StatsRequest req;
    req.id = 99;
    const std::string text = statsRequestText(req);
    EXPECT_EQ(text, "jitsched-stats 99\nend\n");
    EXPECT_TRUE(isStatsRequestFrame(text));
    EXPECT_FALSE(isStatsRequestFrame("jitsched-request 99\nend\n"));

    std::istringstream is(text);
    std::string error;
    const auto back = tryReadStatsRequest(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->id, 99u);
}

TEST(ServiceProtocol, StatsRequestRejectsABody)
{
    std::istringstream is("jitsched-stats 1\npayload\nend\n");
    std::string error;
    EXPECT_FALSE(tryReadStatsRequest(is, &error).has_value());
    EXPECT_NE(error.find("carries a body"), std::string::npos)
        << error;
}

TEST(ServiceProtocol, StatsResponseOkRoundTrip)
{
    const StatsResponse resp = makeStatsResponse(
        7,
        "counter service.frames_served 3\n"
        "gauge service.queue.depth 0\n");
    ASSERT_EQ(resp.lines.size(), 2u);

    std::istringstream is(statsResponseText(resp));
    std::string error;
    const auto back = tryReadStatsResponse(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->id, 7u);
    EXPECT_TRUE(back->ok);
    ASSERT_EQ(back->lines.size(), 2u);
    EXPECT_EQ(back->lines[0], "counter service.frames_served 3");
    EXPECT_EQ(back->lines[1], "gauge service.queue.depth 0");
}

TEST(ServiceProtocol, StatsResponseErrorRoundTrip)
{
    StatsResponse resp;
    resp.id = 8;
    resp.ok = false;
    resp.code = errcode::invalidArgument;
    resp.error = "bad stats request";
    std::istringstream is(statsResponseText(resp));
    std::string error;
    const auto back = tryReadStatsResponse(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_FALSE(back->ok);
    EXPECT_EQ(back->code, errcode::invalidArgument);
    EXPECT_EQ(back->error, "bad stats request");
    EXPECT_TRUE(back->lines.empty());
}

TEST(ServiceProtocol, StatsResponseTruncatedSnapshotFails)
{
    std::istringstream is("jitsched-stats-response 1\n"
                          "status ok\n"
                          "snapshot 5\n"
                          "counter a.b 1\n"
                          "end\n");
    std::string error;
    EXPECT_FALSE(tryReadStatsResponse(is, &error).has_value());
    EXPECT_NE(error.find("snapshot truncated"), std::string::npos)
        << error;
}

TEST(ServiceProtocol, FrameEndDetection)
{
    EXPECT_TRUE(isFrameEnd("end"));
    EXPECT_TRUE(isFrameEnd("  end  "));
    EXPECT_TRUE(isFrameEnd("end # trailing comment"));
    EXPECT_FALSE(isFrameEnd("ending"));
    EXPECT_FALSE(isFrameEnd("# end"));
    EXPECT_FALSE(isFrameEnd(""));
}

TEST(ServiceProtocol, FingerprintIgnoresId)
{
    ServiceRequest a = exampleRequest();
    ServiceRequest b = exampleRequest();
    b.id = a.id + 1;
    EXPECT_EQ(requestFingerprint(a), requestFingerprint(b));
}

TEST(ServiceProtocol, FingerprintSeesPolicyOptionsAndWorkload)
{
    const ServiceRequest base = exampleRequest();

    ServiceRequest other_policy = exampleRequest();
    other_policy.policy = "astar";
    EXPECT_NE(requestFingerprint(base),
              requestFingerprint(other_policy));

    ServiceRequest other_options = exampleRequest();
    other_options.options.compileCores = 3;
    EXPECT_NE(requestFingerprint(base),
              requestFingerprint(other_options));

    ServiceRequest other_workload = exampleRequest();
    other_workload.workload = figure2Workload();
    EXPECT_NE(requestFingerprint(base),
              requestFingerprint(other_workload));
}

TEST(ServiceProtocol, PingRequestRoundTrip)
{
    PingRequest req;
    req.id = 77;
    const std::string text = pingRequestText(req);
    EXPECT_TRUE(isPingRequestFrame(text));
    EXPECT_FALSE(isPingRequestFrame("jitsched-request 77\nend\n"));
    EXPECT_FALSE(isStatsRequestFrame(text));

    std::istringstream is(text);
    std::string error;
    const auto back = tryReadPingRequest(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->id, 77u);
}

TEST(ServiceProtocol, PingRequestRejectsABody)
{
    std::istringstream is("jitsched-ping 3\npayload\nend\n");
    std::string error;
    EXPECT_FALSE(tryReadPingRequest(is, &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST(ServiceProtocol, PongOkRoundTrip)
{
    const PongResponse resp = makePongResponse(77);
    EXPECT_TRUE(resp.ok);

    std::istringstream is(pongResponseText(resp));
    std::string error;
    const auto back = tryReadPongResponse(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_TRUE(back->ok);
    EXPECT_EQ(back->id, 77u);
    EXPECT_TRUE(back->code.empty());
}

TEST(ServiceProtocol, PongErrorRoundTrip)
{
    PongResponse resp;
    resp.id = 9;
    resp.ok = false;
    resp.code = errcode::unavailable;
    resp.error = "shutting down";

    std::istringstream is(pongResponseText(resp));
    std::string error;
    const auto back = tryReadPongResponse(is, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_FALSE(back->ok);
    EXPECT_EQ(back->id, 9u);
    EXPECT_EQ(back->code, errcode::unavailable);
    EXPECT_EQ(back->error, "shutting down");
}

} // anonymous namespace
} // namespace jitsched
