/**
 * @file
 * Tests for the greedy case minimizer.
 */

#include <gtest/gtest.h>

#include "qa/fuzz_workload.hh"
#include "qa/minimize.hh"
#include "support/rng.hh"

namespace jitsched {
namespace qa {
namespace {

TEST(Minimize, AlwaysTruePredicateShrinksToTheFloor)
{
    Rng rng = Rng::caseStream(31, 0);
    FuzzDomain domain;
    domain.maxCalls = 28;
    const Workload w = randomWorkload(rng, domain);

    MinimizeStats stats;
    const Workload minimal = minimizeWorkload(
        w, [](const Workload &) { return true; }, 2000, &stats);
    EXPECT_EQ(minimal.numCalls(), 1u);
    EXPECT_EQ(minimal.numFunctions(), 1u);
    for (std::size_t i = 0; i < minimal.numFunctions(); ++i)
        EXPECT_EQ(minimal.function(static_cast<FuncId>(i)).numLevels(),
                  1u);
    EXPECT_EQ(stats.callsBefore, w.numCalls());
    EXPECT_EQ(stats.callsAfter, 1u);
}

TEST(Minimize, PreservesThePropertyItMinimizesFor)
{
    // Predicate: the workload still calls its hottest function at
    // least twice.  The result must be 1-minimal (dropping any one
    // more call breaks it) and still satisfy the predicate.
    Rng rng = Rng::caseStream(31, 7);
    const Workload w = randomWorkload(rng, FuzzDomain{});
    FuncId hottest = 0;
    for (std::size_t i = 1; i < w.numFunctions(); ++i)
        if (w.callCount(static_cast<FuncId>(i)) >
            w.callCount(hottest))
            hottest = static_cast<FuncId>(i);
    if (w.callCount(hottest) < 2)
        GTEST_SKIP() << "instance too small for this predicate";

    const auto pred = [&](const Workload &c) {
        // Function ids shift when uncalled functions are dropped, so
        // identify the hottest function by its name.
        for (std::size_t i = 0; i < c.numFunctions(); ++i) {
            const auto f = static_cast<FuncId>(i);
            if (c.function(f).name() == w.function(hottest).name())
                return c.callCount(f) >= 2;
        }
        return false;
    };
    MinimizeStats stats;
    const Workload minimal = minimizeWorkload(w, pred, 2000, &stats);
    EXPECT_TRUE(pred(minimal));
    EXPECT_EQ(minimal.numCalls(), 2u);
    EXPECT_EQ(minimal.numFunctions(), 1u);
    EXPECT_GT(stats.probes, 0u);
}

TEST(Minimize, RespectsTheProbeBudget)
{
    Rng rng = Rng::caseStream(31, 2);
    const Workload w = randomWorkload(rng, FuzzDomain{});
    MinimizeStats stats;
    minimizeWorkload(
        w, [](const Workload &) { return true; }, 3, &stats);
    EXPECT_LE(stats.probes, 4u); // one in-flight probe may finish
}

} // anonymous namespace
} // namespace qa
} // namespace jitsched
