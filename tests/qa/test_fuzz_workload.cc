/**
 * @file
 * Tests for the workload fuzzer: every generated or mutated instance
 * must be a legal OCSP input, and the whole pipeline must be a pure
 * function of the (seed, case) pair.
 */

#include <gtest/gtest.h>

#include "qa/fuzz_workload.hh"
#include "support/rng.hh"

namespace jitsched {
namespace qa {
namespace {

/** Definition-1 monotonicity plus basic shape sanity. */
void
expectLegal(const Workload &w)
{
    ASSERT_GE(w.numFunctions(), 1u);
    ASSERT_GE(w.numCalls(), 1u);
    for (std::size_t i = 0; i < w.numFunctions(); ++i) {
        const auto &f = w.function(static_cast<FuncId>(i));
        ASSERT_GE(f.numLevels(), 1u);
        for (Level l = 1; l < f.numLevels(); ++l) {
            EXPECT_LE(f.compileTime(l - 1), f.compileTime(l));
            EXPECT_GE(f.execTime(l - 1), f.execTime(l));
        }
        for (Level l = 0; l < f.numLevels(); ++l)
            EXPECT_GE(f.execTime(l), 1);
    }
    for (const FuncId c : w.calls())
        ASSERT_LT(static_cast<std::size_t>(c), w.numFunctions());
}

TEST(FuzzWorkload, GeneratedInstancesAreLegal)
{
    const FuzzDomain domain;
    for (std::uint64_t c = 0; c < 200; ++c) {
        Rng rng = Rng::caseStream(11, c);
        expectLegal(randomWorkload(rng, domain));
    }
}

TEST(FuzzWorkload, MutationChainsPreserveLegality)
{
    const FuzzDomain domain;
    for (std::uint64_t c = 0; c < 100; ++c) {
        Rng rng = Rng::caseStream(12, c);
        Workload w = randomWorkload(rng, domain);
        for (int m = 0; m < 10; ++m) {
            w = mutateWorkload(w, rng, domain);
            expectLegal(w);
        }
    }
}

TEST(FuzzWorkload, CaseStreamMakesGenerationAPureFunction)
{
    const FuzzDomain domain;
    for (std::uint64_t c : {0ull, 1ull, 57ull}) {
        Rng a = Rng::caseStream(99, c);
        Rng b = Rng::caseStream(99, c);
        const Workload wa = randomWorkload(a, domain);
        const Workload wb = randomWorkload(b, domain);
        ASSERT_EQ(wa.numFunctions(), wb.numFunctions());
        ASSERT_EQ(wa.calls(), wb.calls());
        for (std::size_t i = 0; i < wa.numFunctions(); ++i) {
            const auto &fa = wa.function(static_cast<FuncId>(i));
            const auto &fb = wb.function(static_cast<FuncId>(i));
            ASSERT_EQ(fa.numLevels(), fb.numLevels());
            for (Level l = 0; l < fa.numLevels(); ++l) {
                EXPECT_EQ(fa.compileTime(l), fb.compileTime(l));
                EXPECT_EQ(fa.execTime(l), fb.execTime(l));
            }
        }
    }
}

TEST(FuzzWorkload, AppendCallsCyclesExistingCalls)
{
    Rng rng = Rng::caseStream(13, 0);
    const Workload w = randomWorkload(rng, FuzzDomain{});
    const Workload more = appendCalls(w, 5);
    ASSERT_EQ(more.numCalls(), w.numCalls() + 5);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(more.calls()[w.numCalls() + i],
                  w.calls()[i % w.numCalls()]);
    expectLegal(more);
}

TEST(FuzzWorkload, ScaleCostsMultipliesEveryTime)
{
    Rng rng = Rng::caseStream(14, 0);
    const Workload w = randomWorkload(rng, FuzzDomain{});
    const Workload scaled = scaleCosts(w, 3);
    for (std::size_t i = 0; i < w.numFunctions(); ++i) {
        const auto &f = w.function(static_cast<FuncId>(i));
        const auto &s = scaled.function(static_cast<FuncId>(i));
        for (Level l = 0; l < f.numLevels(); ++l) {
            EXPECT_EQ(s.compileTime(l), 3 * f.compileTime(l));
            EXPECT_EQ(s.execTime(l), 3 * f.execTime(l));
        }
    }
}

TEST(FuzzWorkload, DropFunctionRemapsCallIds)
{
    // Build a 3-function workload where function 1 is uncalled, drop
    // it, and check the calls to function 2 now name function 1.
    Rng rng = Rng::caseStream(15, 3);
    const FuzzDomain domain;
    for (std::uint64_t c = 0; c < 50; ++c) {
        Rng r = Rng::caseStream(15, c);
        const Workload w = randomWorkload(r, domain);
        for (std::size_t i = 0; i < w.numFunctions(); ++i) {
            const auto f = static_cast<FuncId>(i);
            if (w.callCount(f) != 0 || w.numFunctions() < 2)
                continue;
            const Workload dropped = dropFunction(w, f);
            ASSERT_EQ(dropped.numFunctions(), w.numFunctions() - 1);
            ASSERT_EQ(dropped.numCalls(), w.numCalls());
            for (std::size_t k = 0; k < w.numCalls(); ++k) {
                const FuncId before = w.calls()[k];
                const FuncId expected =
                    before > f ? static_cast<FuncId>(before - 1)
                               : before;
                EXPECT_EQ(dropped.calls()[k], expected);
            }
            expectLegal(dropped);
        }
    }
}

} // anonymous namespace
} // namespace qa
} // namespace jitsched
