/**
 * @file
 * Tests of the oracle library itself: clean instances pass, corrupt
 * schedules and deliberately-inverted invariants are caught.  An
 * oracle that cannot fail protects nothing, so half of this file is
 * negative tests.
 */

#include <gtest/gtest.h>

#include "core/candidate_levels.hh"
#include "core/single_level.hh"
#include "qa/fuzz_workload.hh"
#include "qa/oracles.hh"
#include "sim/makespan.hh"
#include "support/rng.hh"
#include "trace/paper_examples.hh"

namespace jitsched {
namespace qa {
namespace {

TEST(Oracles, PaperExamplesAreClean)
{
    for (const Workload &w : {figure1Workload(), figure2Workload()}) {
        OracleStats stats;
        const std::vector<Violation> violations =
            checkAll(w, {}, &stats);
        EXPECT_TRUE(violations.empty())
            << describeViolations(violations);
        EXPECT_EQ(stats.exactRuns, 1u);
    }
}

TEST(Oracles, ReferenceMakespanMatchesSimulator)
{
    // The whole point of the reference replay is that it shares no
    // code with sim/makespan.cc; agreeing on random instances is the
    // simulator's independent audit.
    const FuzzDomain domain;
    for (std::uint64_t c = 0; c < 100; ++c) {
        Rng rng = Rng::caseStream(21, c);
        const Workload w = randomWorkload(rng, domain);
        const auto cands = oracleCandidateLevels(w);
        const Schedule s = baseLevelSchedule(w, cands);
        EXPECT_EQ(referenceMakespan(w, s),
                  simulate(w, s).makespan);
    }
}

TEST(Oracles, InvertedLowerBoundFires)
{
    // The --break-oracle canary: with the comparison flipped, a
    // healthy stack must violate "lb >= make-span" essentially
    // always.  If this stops firing, the fuzzer has gone blind.
    OracleConfig cfg;
    cfg.invertLowerBound = true;
    const std::vector<Violation> violations =
        checkAll(figure1Workload(), cfg);
    ASSERT_FALSE(violations.empty());
    EXPECT_EQ(violations.front().oracle, "lower-bound");
}

TEST(Oracles, PerturbedAstarParFires)
{
    // The --break-oracle astar-par canary: shifting the parallel
    // search's reported cost by one tick must trip the differential
    // against the sequential A* (and the simulator).  If this stops
    // firing, the parallel differential has gone blind.
    OracleConfig cfg;
    cfg.perturbAstarPar = true;
    const std::vector<Violation> violations =
        checkAll(figure1Workload(), cfg);
    ASSERT_FALSE(violations.empty());
    bool flagged_par = false;
    for (const Violation &v : violations)
        if (v.detail.find("astar-par") != std::string::npos)
            flagged_par = true;
    EXPECT_TRUE(flagged_par) << describeViolations(violations);
}

TEST(Oracles, CorruptScheduleIsCaught)
{
    const Workload w = figure1Workload();
    // Skip one called function entirely: invalid by Definition 2.
    Schedule missing;
    const FuncId first = w.calls().front();
    missing.append(first, static_cast<Level>(
                              w.function(first).numLevels() - 1));
    bool only_one_callee = true;
    for (const FuncId f : w.calls())
        if (f != first)
            only_one_callee = false;
    ASSERT_FALSE(only_one_callee)
        << "example unexpectedly calls a single function";

    std::vector<Violation> violations;
    checkScheduleSemantics(w, missing, "corrupt", violations);
    ASSERT_FALSE(violations.empty());
}

TEST(Oracles, EmptyCallSequenceIsVacuouslyClean)
{
    const Workload w("empty", {}, {});
    EXPECT_TRUE(checkAll(w).empty());
}

TEST(Oracles, FuzzSweepIsCleanOnRandomInstances)
{
    // A miniature in-process copy of `jitsched-fuzz solvers`: the
    // first 60 cases of a fixed seed, full oracle chain.  Keeps the
    // fuzz loop's health under the plain tier-1 gate even where the
    // binary is never run.
    const FuzzDomain domain;
    OracleConfig cfg;
    OracleStats stats;
    for (std::uint64_t c = 0; c < 60; ++c) {
        Rng rng = Rng::caseStream(1, c);
        Workload w = randomWorkload(rng, domain);
        const std::uint64_t mutations = rng.nextBelow(4);
        for (std::uint64_t m = 0; m < mutations; ++m)
            w = mutateWorkload(w, rng, domain);
        const std::vector<Violation> violations =
            checkAll(w, cfg, &stats);
        EXPECT_TRUE(violations.empty())
            << "case " << c << "\n"
            << describeViolations(violations);
    }
    EXPECT_GT(stats.exactRuns, 0u);
}

} // anonymous namespace
} // namespace qa
} // namespace jitsched
