/**
 * @file
 * Replay every checked-in reproducer through the oracles appropriate
 * to its extension (qa/corpus.hh).  Each file here is a bug that
 * once existed or an input shape that once looked risky; the suite
 * is the ratchet that keeps them fixed.
 *
 * The corpus directory is compiled in as JITSCHED_QA_CORPUS_DIR (set
 * in tests/CMakeLists.txt), so the suite runs from any build
 * directory.
 */

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qa/corpus.hh"
#include "qa/fuzz_workload.hh"
#include "support/rng.hh"

namespace jitsched {
namespace qa {
namespace {

namespace fs = std::filesystem;

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    for (const auto &entry :
         fs::directory_iterator(JITSCHED_QA_CORPUS_DIR)) {
        if (entry.is_regular_file())
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(CorpusReplay, EveryCheckedInCasePasses)
{
    const std::vector<std::string> files = corpusFiles();
    ASSERT_GE(files.size(), 10u)
        << "starter corpus went missing from "
        << JITSCHED_QA_CORPUS_DIR;
    for (const std::string &file : files) {
        const ReplayResult result = replayFile(file);
        EXPECT_TRUE(result.ok) << result.detail;
    }
}

TEST(CorpusReplay, BothExtensionsArePresent)
{
    // The corpus must keep exercising both replay paths; losing one
    // silently halves the ratchet.
    bool workload = false, frame = false;
    for (const std::string &file : corpusFiles()) {
        workload |= file.ends_with(".workload");
        frame |= file.ends_with(".frame");
    }
    EXPECT_TRUE(workload);
    EXPECT_TRUE(frame);
}

TEST(CorpusReplay, UnknownExtensionIsAFailure)
{
    const ReplayResult result =
        replayFile(std::string(JITSCHED_QA_CORPUS_DIR) +
                   "/no-such-file.txt");
    EXPECT_FALSE(result.ok);
}

TEST(CorpusReplay, WrittenCasesRoundTrip)
{
    // writeWorkloadCase -> replayFile is the fuzzer's reproducer
    // path; a comment-laden file must come back clean.
    Rng rng = Rng::caseStream(41, 0);
    const Workload w = randomWorkload(rng, FuzzDomain{});
    const std::string dir = ::testing::TempDir() + "qa-corpus-test";
    std::string error;
    const std::string path = writeWorkloadCase(
        dir, "roundtrip", w, "seed 41 case 0\nwritten by tests",
        &error);
    ASSERT_FALSE(path.empty()) << error;
    const ReplayResult result = replayFile(path);
    EXPECT_TRUE(result.ok) << result.detail;
}

} // anonymous namespace
} // namespace qa
} // namespace jitsched
