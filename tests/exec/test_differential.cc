/**
 * @file
 * Differential testing of the scheduler stack.
 *
 * On ~200 seeded random tiny traces (small enough for exhaustive
 * search) the whole quality chain must hold:
 *
 *   lower bound <= brute-force optimum == A* <= IAR
 *               <= each single-level approximation
 *
 * The chain itself lives in qa/oracles.hh — the same definitions the
 * fuzzer (jitsched-fuzz) hammers with random instances — so a
 * regression in any scheduler breaks one shared invariant, reported
 * with the same evidence here and there.  This test keeps the seeded
 * sweep deterministic and additionally pins the batch evaluation
 * engine to the plain simulator, the exec/ path the oracles replay
 * schedules through.
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/iar.hh"
#include "core/single_level.hh"
#include "exec/batch_eval.hh"
#include "qa/oracles.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

/** Instance shape derived from the seed; all exhaustively solvable. */
struct Shape
{
    std::size_t levels;
    bool interpreter;
};

Shape
shapeOf(std::uint64_t seed)
{
    return Shape{2 + (seed % 3 == 0 ? 1u : 0u), // mostly 2, some 3
                 seed % 5 == 0};
}

Workload
differentialWorkload(std::uint64_t seed)
{
    const Shape shape = shapeOf(seed);
    SyntheticConfig cfg;
    cfg.numFunctions = 3 + seed % 2; // 3 or 4 unique functions
    cfg.numCalls = 12 + seed % 17;   // 12 .. 28 calls
    cfg.numLevels = shape.levels;
    cfg.numPhases = 1 + seed % 2;
    cfg.zipfSkew = 0.5 + 0.1 * (seed % 7);
    cfg.interpreterLevel0 = shape.interpreter;
    cfg.seed = seed * 7919 + 13;
    return generateSynthetic(cfg);
}

class Differential : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Differential, SchedulerQualityChainHolds)
{
    const std::uint64_t seed = GetParam();
    const Workload w = differentialWorkload(seed);
    const Shape shape = shapeOf(seed);

    qa::OracleConfig cfg;
    // Against opt-only the advantage is the paper's *empirical*
    // claim for its Jikes-like two-candidate setting, not a theorem:
    // on tiny interpreter-tier or 3-level instances the Formula-2
    // classification can keep a function low where compiling
    // everything high happens to win.  Assert it on the shapes where
    // it is robust (every 2-level JIT instance in the sweep).
    cfg.checkIarVsOptOnly = shape.levels == 2 && !shape.interpreter;

    // The fuzzer's defaults keep budgets tight for throughput; this
    // sweep instead promises exact coverage of all 200 seeds, so
    // give the exact solvers their full offline-study budgets.
    cfg.bruteMaxNodes = 50'000'000;
    cfg.astarMaxExpansions = 5'000'000;
    cfg.astarMemoryBudget = 2ull << 30;

    qa::OracleStats stats;
    const std::vector<qa::Violation> violations =
        qa::checkAll(w, cfg, &stats);
    EXPECT_TRUE(violations.empty())
        << qa::describeViolations(violations);

    // The instances are sized for exhaustive search; a budget skip
    // would mean the exact solvers silently went unguarded.
    EXPECT_EQ(stats.exactRuns, 1u);
    EXPECT_EQ(stats.exactSkipped, 0u);
}

TEST_P(Differential, BatchEvaluatorAgreesWithSimulator)
{
    // The oracles replay every schedule through plain simulate();
    // the service and sweep paths evaluate through the batch engine.
    // Pin the two together so the extraction of the quality chain
    // into qa/ did not drop the exec/ coverage this file had.
    const Workload w = differentialWorkload(GetParam());
    const auto cands = oracleCandidateLevels(w);
    const Schedule base = baseLevelSchedule(w, cands);
    const Schedule iar = iarSchedule(w, cands).schedule;

    const std::vector<SimResult> sims =
        BatchEvaluator::global().evaluate(
            {{&w, base, {}}, {&w, iar, {}}});
    EXPECT_EQ(sims[0].makespan, simulate(w, base).makespan);
    EXPECT_EQ(sims[1].makespan, simulate(w, iar).makespan);
    EXPECT_EQ(sims[0].totalBubble, simulate(w, base).totalBubble);
    EXPECT_EQ(sims[1].totalBubble, simulate(w, iar).totalBubble);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range<std::uint64_t>(1, 201));

} // anonymous namespace
} // namespace jitsched
