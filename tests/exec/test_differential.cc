/**
 * @file
 * Differential testing of the scheduler stack.
 *
 * On ~200 seeded random tiny traces (small enough for exhaustive
 * search) the whole quality chain must hold:
 *
 *   lower bound <= brute-force optimum == A* <= IAR
 *               <= each single-level approximation
 *
 * A regression in any scheduler — a simulator change that mis-times
 * bubbles, an IAR step that stops helping, an A* heuristic that
 * overestimates — breaks one of the inequalities on some seed.  The
 * make-span evaluations themselves run through the batch engine, so
 * the harness also exercises the exec/ path it protects.
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/astar.hh"
#include "core/brute_force.hh"
#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_level.hh"
#include "exec/batch_eval.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

/** Instance shape derived from the seed; all exhaustively solvable. */
struct Shape
{
    std::size_t levels;
    bool interpreter;
};

Shape
shapeOf(std::uint64_t seed)
{
    return Shape{2 + (seed % 3 == 0 ? 1u : 0u), // mostly 2, some 3
                 seed % 5 == 0};
}

Workload
differentialWorkload(std::uint64_t seed)
{
    const Shape shape = shapeOf(seed);
    SyntheticConfig cfg;
    cfg.numFunctions = 3 + seed % 2; // 3 or 4 unique functions
    cfg.numCalls = 12 + seed % 17;   // 12 .. 28 calls
    cfg.numLevels = shape.levels;
    cfg.numPhases = 1 + seed % 2;
    cfg.zipfSkew = 0.5 + 0.1 * (seed % 7);
    cfg.interpreterLevel0 = shape.interpreter;
    cfg.seed = seed * 7919 + 13;
    return generateSynthetic(cfg);
}

class Differential : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Differential, SchedulerQualityChainHolds)
{
    const std::uint64_t seed = GetParam();
    const Workload w = differentialWorkload(seed);

    const BruteForceResult bf = bruteForceOptimal(w);
    ASSERT_TRUE(bf.complete) << "instance too large for brute force";
    const AStarResult as = aStarOptimal(w);
    ASSERT_EQ(as.status, AStarStatus::Optimal);

    const auto cands = oracleCandidateLevels(w);
    const std::vector<SimResult> sims =
        BatchEvaluator::global().evaluate(
            {{&w, bf.schedule, {}},
             {&w, as.schedule, {}},
             {&w, iarSchedule(w, cands).schedule, {}},
             {&w, baseLevelSchedule(w, cands), {}},
             {&w, optimizingLevelSchedule(w, cands), {}}});
    const Tick brute = sims[0].makespan;
    const Tick astar = sims[1].makespan;
    const Tick iar = sims[2].makespan;
    const Tick base = sims[3].makespan;
    const Tick opt = sims[4].makespan;

    // The solvers' own make-span accounting agrees with the
    // simulator's.
    EXPECT_EQ(brute, bf.makespan);
    EXPECT_EQ(astar, as.makespan);

    // Lower bound <= optimum.
    EXPECT_LE(lowerBoundAllLevels(w), brute);

    // Both exact solvers find the same optimum.
    EXPECT_EQ(brute, astar);

    // The optimum bounds every approximation from below.
    EXPECT_LE(brute, iar);
    EXPECT_LE(brute, base);
    EXPECT_LE(brute, opt);

    // IAR starts from the base-level schedule and only refines it;
    // it must never end up worse.
    EXPECT_LE(iar, base);

    // Against opt-only the advantage is the paper's *empirical*
    // claim for its Jikes-like two-candidate setting, not a theorem:
    // on tiny interpreter-tier or 3-level instances the Formula-2
    // classification can keep a function low where compiling
    // everything high happens to win.  Assert it on the shapes where
    // it is robust (every 2-level JIT instance in the sweep).
    const Shape shape = shapeOf(seed);
    if (shape.levels == 2 && !shape.interpreter)
        EXPECT_LE(iar, opt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range<std::uint64_t>(1, 201));

} // anonymous namespace
} // namespace jitsched
