/**
 * @file
 * Unit tests for the fork-join thread pool.
 */

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.hh"

namespace jitsched {
namespace {

TEST(ThreadPool, ConcurrencyIncludesTheCaller)
{
    EXPECT_EQ(ThreadPool(1).concurrency(), 1u);
    EXPECT_EQ(ThreadPool(2).concurrency(), 2u);
    EXPECT_EQ(ThreadPool(8).concurrency(), 8u);
    EXPECT_GE(ThreadPool(0).concurrency(), 1u);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        constexpr std::size_t n = 1000;
        std::vector<std::atomic<int>> counts(n);
        pool.parallelFor(n, [&](std::size_t i) { ++counts[i]; });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(counts[i].load(), 1)
                << "index " << i << " at " << threads << " threads";
    }
}

TEST(ThreadPool, EmptyBatchIsANoop)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleIndexBatch)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> seen{0};
    pool.parallelFor(1, [&](std::size_t i) { seen = i + 1; });
    EXPECT_EQ(seen.load(), 1u);
}

TEST(ThreadPool, RepeatedBatchesReuseTheWorkers)
{
    ThreadPool pool(4);
    std::uint64_t total = 0;
    for (int round = 0; round < 200; ++round) {
        const std::size_t n = 1 + round % 7;
        std::vector<std::uint64_t> out(n);
        pool.parallelFor(n, [&](std::size_t i) { out[i] = i + 1; });
        total = std::accumulate(out.begin(), out.end(), total);
    }
    // Sum of 1..n over the rounds, computed independently.
    std::uint64_t expect = 0;
    for (int round = 0; round < 200; ++round) {
        const std::uint64_t n = 1 + round % 7;
        expect += n * (n + 1) / 2;
    }
    EXPECT_EQ(total, expect);
}

TEST(ThreadPool, SubmitBatchRunsEveryClosureExactlyOnce)
{
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        constexpr std::size_t n = 500;
        std::vector<std::atomic<int>> counts(n);
        std::vector<std::function<void()>> tasks;
        tasks.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            tasks.push_back([&counts, i] { ++counts[i]; });
        pool.submitBatch(tasks);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(counts[i].load(), 1)
                << "task " << i << " at " << threads << " threads";
    }
}

TEST(ThreadPool, SubmitBatchHandlesHeterogeneousClosures)
{
    // The point of the bulk path: one publish may carry closures of
    // entirely different shapes.  Each writes its own slot, so the
    // result is concurrency-independent.
    ThreadPool pool(4);
    std::vector<std::int64_t> out(3, 0);
    std::vector<std::function<void()>> tasks;
    tasks.push_back([&out] { out[0] = 7; });
    tasks.push_back([&out] {
        for (int i = 1; i <= 10; ++i)
            out[1] += i;
    });
    tasks.push_back([&out] { out[2] = -1; });
    pool.submitBatch(tasks);
    EXPECT_EQ(out, (std::vector<std::int64_t>{7, 55, -1}));
}

TEST(ThreadPool, SubmitBatchEmptyIsANoop)
{
    ThreadPool pool(4);
    pool.submitBatch({});
}

TEST(ThreadPool, ResultsIndependentOfConcurrency)
{
    constexpr std::size_t n = 512;
    std::vector<std::uint64_t> reference(n);
    ThreadPool(1).parallelFor(n, [&](std::size_t i) {
        reference[i] = i * i + 17;
    });
    for (const std::size_t threads : {2u, 3u, 8u}) {
        ThreadPool pool(threads);
        std::vector<std::uint64_t> out(n);
        pool.parallelFor(n, [&](std::size_t i) {
            out[i] = i * i + 17;
        });
        EXPECT_EQ(out, reference) << threads << " threads";
    }
}

TEST(ThreadPool, ManyMoreTasksThanThreads)
{
    ThreadPool pool(2);
    constexpr std::size_t n = 20000;
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(n, [&](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), std::uint64_t{n} * (n - 1) / 2);
}

TEST(ThreadPool, GlobalPoolIsASingleton)
{
    EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
    EXPECT_GE(ThreadPool::global().concurrency(), 1u);
}

// The JITSCHED_THREADS contract, pinned.  Accepted values configure
// the pool; everything else is a user error and must exit(1) — a
// silently mis-parsed thread count would skew every benchmark run.
//
// The death tests must use the threadsafe style: earlier tests in
// this binary leave live pool threads behind, and the default fast
// style forks the multi-threaded process directly — a deadlock under
// TSan.  Threadsafe re-executes the binary for each death test.
class ThreadPoolEnvDeath : public ::testing::Test
{
  protected:
    ThreadPoolEnvDeath()
    {
        ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    }
};

TEST(ThreadPoolEnv, UnsetOrEmptyMeansAuto)
{
    EXPECT_EQ(ThreadPool::parseThreadsEnv(nullptr), 0u);
    EXPECT_EQ(ThreadPool::parseThreadsEnv(""), 0u);
}

TEST(ThreadPoolEnv, PlainIntegersParse)
{
    EXPECT_EQ(ThreadPool::parseThreadsEnv("1"), 1u);
    EXPECT_EQ(ThreadPool::parseThreadsEnv("8"), 8u);
    EXPECT_EQ(ThreadPool::parseThreadsEnv("128"), 128u);
    EXPECT_EQ(ThreadPool::parseThreadsEnv(" 4 "), 4u);
}

TEST_F(ThreadPoolEnvDeath, NonNumericIsFatal)
{
    EXPECT_EXIT(ThreadPool::parseThreadsEnv("lots"),
                ::testing::ExitedWithCode(1), "JITSCHED_THREADS");
}

TEST_F(ThreadPoolEnvDeath, ZeroIsFatal)
{
    // 0 is reserved for "auto" via *unset*, never as an explicit
    // value (a request for a zero-thread pool is meaningless).
    EXPECT_EXIT(ThreadPool::parseThreadsEnv("0"),
                ::testing::ExitedWithCode(1), "JITSCHED_THREADS");
}

TEST_F(ThreadPoolEnvDeath, NegativeIsFatal)
{
    EXPECT_EXIT(ThreadPool::parseThreadsEnv("-2"),
                ::testing::ExitedWithCode(1), "JITSCHED_THREADS");
}

TEST_F(ThreadPoolEnvDeath, TrailingGarbageIsFatal)
{
    // strtol would have quietly read "4x" as 4; the contract says no.
    EXPECT_EXIT(ThreadPool::parseThreadsEnv("4x"),
                ::testing::ExitedWithCode(1), "JITSCHED_THREADS");
}

} // anonymous namespace
} // namespace jitsched
