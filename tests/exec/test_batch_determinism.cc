/**
 * @file
 * Property tests for the determinism contract of the batch engine:
 * batch evaluation with 1, 2 and 8 threads produces bit-identical
 * results, and the cache hit/miss counts are exact and independent
 * of the thread count.
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/astar.hh"
#include "core/iar.hh"
#include "core/single_level.hh"
#include "exec/batch_eval.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

void
expectSameResult(const SimResult &a, const SimResult &b,
                 std::size_t job, std::size_t threads)
{
    SCOPED_TRACE(::testing::Message()
                 << "job " << job << ", " << threads << " threads");
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.execEnd, b.execEnd);
    EXPECT_EQ(a.compileEnd, b.compileEnd);
    EXPECT_EQ(a.totalBubble, b.totalBubble);
    EXPECT_EQ(a.bubbleCount, b.bubbleCount);
    EXPECT_EQ(a.totalExec, b.totalExec);
    EXPECT_EQ(a.totalCompile, b.totalCompile);
    EXPECT_EQ(a.callsAtLevel, b.callsAtLevel);
}

/** A sweep-shaped job grid over a few synthetic workloads. */
class BatchGrid : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (const std::uint64_t seed : {11u, 22u, 33u}) {
            SyntheticConfig cfg;
            cfg.numFunctions = 30;
            cfg.numCalls = 3000;
            cfg.numLevels = 3;
            cfg.seed = seed;
            workloads_.push_back(generateSynthetic(cfg));
        }
        for (const Workload &w : workloads_) {
            const auto cands = oracleCandidateLevels(w);
            for (const Schedule &s :
                 {iarSchedule(w, cands).schedule,
                  baseLevelSchedule(w, cands),
                  optimizingLevelSchedule(w, cands)})
                for (const std::size_t cores : {1u, 2u, 4u})
                    jobs_.push_back(
                        {&w, s, {.compileCores = cores}});
        }
        // Duplicate a slice of the grid so intra-batch aliasing is
        // exercised too.
        for (std::size_t i = 0; i < 5; ++i)
            jobs_.push_back(jobs_[i]);
    }

    std::vector<Workload> workloads_;
    std::vector<EvalJob> jobs_;
};

TEST_F(BatchGrid, ResultsBitIdenticalAcrossThreadCounts)
{
    ThreadPool ref_pool(1);
    BatchEvaluator reference(ref_pool);
    const std::vector<SimResult> expect = reference.evaluate(jobs_);
    ASSERT_EQ(expect.size(), jobs_.size());

    for (const std::size_t threads : {2u, 8u}) {
        ThreadPool pool(threads);
        BatchEvaluator eval(pool);
        const std::vector<SimResult> got = eval.evaluate(jobs_);
        ASSERT_EQ(got.size(), jobs_.size());
        for (std::size_t i = 0; i < jobs_.size(); ++i)
            expectSameResult(got[i], expect[i], i, threads);
    }
}

TEST_F(BatchGrid, CacheCountsExactAndThreadCountInvariant)
{
    const std::size_t unique = jobs_.size() - 5;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        SCOPED_TRACE(::testing::Message() << threads << " threads");
        ThreadPool pool(threads);
        EvalCache cache;
        BatchEvaluator eval(pool, &cache);

        // Cold batch: every job probes and misses (the 5 in-batch
        // duplicates alias the earlier job, but their probe still
        // happened before anything was inserted).
        eval.evaluate(jobs_);
        EXPECT_EQ(cache.hits(), 0u);
        EXPECT_EQ(cache.misses(), jobs_.size());
        EXPECT_EQ(cache.size(), unique);

        // Warm batch: everything hits.
        eval.evaluate(jobs_);
        EXPECT_EQ(cache.hits(), jobs_.size());
        EXPECT_EQ(cache.misses(), jobs_.size());
        EXPECT_EQ(cache.size(), unique);
    }
}

TEST_F(BatchGrid, CachedResultsMatchFreshOnes)
{
    ThreadPool pool(4);
    EvalCache cache;
    BatchEvaluator eval(pool, &cache);
    const std::vector<SimResult> cold = eval.evaluate(jobs_);
    const std::vector<SimResult> warm = eval.evaluate(jobs_);
    for (std::size_t i = 0; i < jobs_.size(); ++i)
        expectSameResult(warm[i], cold[i], i, 4);
}

TEST(BatchDeterminism, EvaluateOneAgreesWithSimulate)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 20;
    cfg.numCalls = 1500;
    cfg.seed = 7;
    const Workload w = generateSynthetic(cfg);
    const Schedule s = iarScheduleOracle(w).schedule;

    ThreadPool pool(2);
    EvalCache cache;
    BatchEvaluator eval(pool, &cache);
    const SimResult direct = simulate(w, s);
    expectSameResult(eval.evaluateOne(w, s), direct, 0, 2);
    // Second call is served from the cache; still identical.
    expectSameResult(eval.evaluateOne(w, s), direct, 1, 2);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(BatchDeterminism, AStarIdenticalWithAndWithoutPool)
{
    for (const std::uint64_t seed : {3u, 5u, 9u}) {
        SyntheticConfig cfg;
        cfg.numFunctions = 5;
        cfg.numCalls = 40;
        cfg.numLevels = 2;
        cfg.seed = seed;
        const Workload w = generateSynthetic(cfg);

        const AStarResult seq = aStarOptimal(w);

        ThreadPool pool(8);
        AStarConfig pcfg;
        pcfg.pool = &pool;
        pcfg.minParallelChildren = 1; // force the parallel path
        const AStarResult par = aStarOptimal(w, pcfg);

        ASSERT_EQ(par.status, seq.status) << "seed " << seed;
        EXPECT_EQ(par.makespan, seq.makespan) << "seed " << seed;
        EXPECT_EQ(par.schedule, seq.schedule) << "seed " << seed;
        EXPECT_EQ(par.nodesExpanded, seq.nodesExpanded)
            << "seed " << seed;
        EXPECT_EQ(par.nodesGenerated, seq.nodesGenerated)
            << "seed " << seed;
    }
}

} // anonymous namespace
} // namespace jitsched
