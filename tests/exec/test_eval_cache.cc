/**
 * @file
 * Unit tests for the make-span memo cache and its fingerprints.
 */

#include <gtest/gtest.h>

#include "exec/eval_cache.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

Workload
tinyWorkload(std::uint64_t seed)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 6;
    cfg.numCalls = 40;
    cfg.numLevels = 2;
    cfg.seed = seed;
    return generateSynthetic(cfg);
}

TEST(EvalKeyHashing, WorkloadFingerprintIsContentBased)
{
    const Workload a = tinyWorkload(1);
    const Workload b = tinyWorkload(1);
    const Workload c = tinyWorkload(2);
    EXPECT_EQ(hashWorkload(a), hashWorkload(b));
    EXPECT_NE(hashWorkload(a), hashWorkload(c));
}

TEST(EvalKeyHashing, ScheduleFingerprintSeesOrderAndLevels)
{
    Schedule s1;
    s1.append(0, 0);
    s1.append(1, 0);
    Schedule s2;
    s2.append(1, 0);
    s2.append(0, 0);
    Schedule s3;
    s3.append(0, 0);
    s3.append(1, 1);
    EXPECT_NE(hashSchedule(s1), hashSchedule(s2));
    EXPECT_NE(hashSchedule(s1), hashSchedule(s3));
    EXPECT_EQ(hashSchedule(s1), hashSchedule(Schedule(s1)));
}

TEST(EvalKeyHashing, OptionsFingerprintSeesEveryKnob)
{
    const SimOptions base;
    SimOptions cores = base;
    cores.compileCores = 4;
    SimOptions jitter = base;
    jitter.execJitterSigma = 0.3;
    SimOptions seed = base;
    seed.jitterSeed = 99;
    EXPECT_NE(hashSimOptions(base), hashSimOptions(cores));
    EXPECT_NE(hashSimOptions(base), hashSimOptions(jitter));
    EXPECT_NE(hashSimOptions(base), hashSimOptions(seed));
    EXPECT_EQ(hashSimOptions(base), hashSimOptions(SimOptions{}));
}

TEST(EvalCache, LookupInsertRoundTrip)
{
    EvalCache cache;
    const EvalKey key{1, 2, 3};
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.misses(), 1u);

    SimResult r;
    r.makespan = 42;
    r.totalBubble = 7;
    cache.insert(key, r);
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->makespan, 42);
    EXPECT_EQ(hit->totalBubble, 7);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCache, DistinctKeysDoNotCollide)
{
    EvalCache cache;
    for (std::uint64_t i = 0; i < 100; ++i) {
        SimResult r;
        r.makespan = static_cast<Tick>(i);
        cache.insert(EvalKey{i, i * 31, i * 131}, r);
    }
    EXPECT_EQ(cache.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i) {
        const auto hit = cache.lookup(EvalKey{i, i * 31, i * 131});
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(hit->makespan, static_cast<Tick>(i));
    }
}

TEST(EvalCache, ClearResetsEntriesAndCounters)
{
    EvalCache cache;
    cache.insert(EvalKey{1, 1, 1}, SimResult{});
    (void)cache.lookup(EvalKey{1, 1, 1});
    (void)cache.lookup(EvalKey{2, 2, 2});
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_FALSE(cache.lookup(EvalKey{1, 1, 1}).has_value());
}

} // anonymous namespace
} // namespace jitsched
