/**
 * @file
 * Unit tests for logging and error reporting.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace jitsched {
namespace {

TEST(Logging, ConcatJoinsArguments)
{
    EXPECT_EQ(detail::concat("a", 1, '-', 2.5), "a1-2.5");
    EXPECT_EQ(detail::concat(), "");
}

TEST(Logging, EnableDisableRoundTrip)
{
    const bool was = setLoggingEnabled(false);
    EXPECT_FALSE(setLoggingEnabled(was)); // returns the false we set
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(JITSCHED_PANIC("boom ", 42), "boom 42");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(JITSCHED_FATAL("bad input ", "x"),
                ::testing::ExitedWithCode(1), "bad input x");
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    const bool was = setLoggingEnabled(false);
    warn("suppressed ", 1);
    inform("suppressed ", 2);
    setLoggingEnabled(was);
}

} // anonymous namespace
} // namespace jitsched
