/**
 * @file
 * Unit tests for logging and error reporting.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace jitsched {
namespace {

TEST(Logging, ConcatJoinsArguments)
{
    EXPECT_EQ(detail::concat("a", 1, '-', 2.5), "a1-2.5");
    EXPECT_EQ(detail::concat(), "");
}

TEST(Logging, EnableDisableRoundTrip)
{
    const bool was = setLoggingEnabled(false);
    EXPECT_FALSE(setLoggingEnabled(was)); // returns the false we set
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(JITSCHED_PANIC("boom ", 42), "boom 42");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(JITSCHED_FATAL("bad input ", "x"),
                ::testing::ExitedWithCode(1), "bad input x");
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    const bool was = setLoggingEnabled(false);
    warn("suppressed ", 1);
    inform("suppressed ", 2);
    setLoggingEnabled(was);
}

TEST(Logging, ParseLogLevelEnvAcceptsTheThreeLevels)
{
    EXPECT_EQ(parseLogLevelEnv("silent"), LogLevel::Silent);
    EXPECT_EQ(parseLogLevelEnv("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevelEnv("info"), LogLevel::Info);
    // Whitespace is trimmed, as with JITSCHED_THREADS.
    EXPECT_EQ(parseLogLevelEnv("  warn "), LogLevel::Warn);
}

TEST(Logging, ParseLogLevelEnvDefaultsWhenUnset)
{
    EXPECT_EQ(parseLogLevelEnv(nullptr), LogLevel::Info);
    EXPECT_EQ(parseLogLevelEnv(""), LogLevel::Info);
}

TEST(LoggingDeath, ParseLogLevelEnvRejectsUnknownValues)
{
    EXPECT_EXIT(parseLogLevelEnv("verbose"),
                ::testing::ExitedWithCode(1),
                "JITSCHED_LOG_LEVEL must be");
    EXPECT_EXIT(parseLogLevelEnv("WARN"),
                ::testing::ExitedWithCode(1),
                "JITSCHED_LOG_LEVEL must be");
    EXPECT_EXIT(parseLogLevelEnv("2"), ::testing::ExitedWithCode(1),
                "JITSCHED_LOG_LEVEL must be");
}

TEST(Logging, SetLogLevelRoundTrips)
{
    const LogLevel was = setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    // Silent gates warn() even with logging enabled.
    warn("must not print");
    inform("must not print");
    EXPECT_EQ(setLogLevel(was), LogLevel::Silent);
}

} // anonymous namespace
} // namespace jitsched
