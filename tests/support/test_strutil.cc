/**
 * @file
 * Unit tests for string / formatting utilities.
 */

#include <gtest/gtest.h>

#include "support/strutil.hh"

namespace jitsched {
namespace {

TEST(Split, Basic)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields)
{
    const auto parts = split(",x,,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "x");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "");
}

TEST(Split, EmptyInputGivesOneEmptyField)
{
    const auto parts = split("", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(Trim, StripsWhitespace)
{
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_EQ(trim("x"), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("a b"), "a b");
}

TEST(ParseInt, Valid)
{
    EXPECT_EQ(parseInt("42").value(), 42);
    EXPECT_EQ(parseInt("-7").value(), -7);
    EXPECT_EQ(parseInt("  123 ").value(), 123);
    EXPECT_EQ(parseInt("0").value(), 0);
}

TEST(ParseInt, Invalid)
{
    EXPECT_FALSE(parseInt("").has_value());
    EXPECT_FALSE(parseInt("abc").has_value());
    EXPECT_FALSE(parseInt("12x").has_value());
    EXPECT_FALSE(parseInt("1.5").has_value());
    EXPECT_FALSE(parseInt("99999999999999999999999").has_value());
}

TEST(ParseDouble, Valid)
{
    EXPECT_DOUBLE_EQ(parseDouble("2.5").value(), 2.5);
    EXPECT_DOUBLE_EQ(parseDouble("-1e3").value(), -1000.0);
    EXPECT_DOUBLE_EQ(parseDouble(" 7 ").value(), 7.0);
}

TEST(ParseDouble, Invalid)
{
    EXPECT_FALSE(parseDouble("").has_value());
    EXPECT_FALSE(parseDouble("x").has_value());
    EXPECT_FALSE(parseDouble("1.5z").has_value());
    EXPECT_FALSE(parseDouble("nan").has_value());
    EXPECT_FALSE(parseDouble("inf").has_value());
}

TEST(FormatTicks, PicksUnits)
{
    EXPECT_EQ(formatTicks(500), "500 ns");
    EXPECT_EQ(formatTicks(1500), "1.500 us");
    EXPECT_EQ(formatTicks(2'500'000), "2.500 ms");
    EXPECT_EQ(formatTicks(3'000'000'000), "3.000 s");
}

TEST(FormatFixed, Decimals)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
    EXPECT_EQ(formatFixed(-1.5, 1), "-1.5");
}

TEST(FormatCount, ThousandsSeparators)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(2403584), "2,403,584");
    EXPECT_EQ(formatCount(43573214), "43,573,214");
}

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("%d-%s", 5, "x"), "5-x");
    EXPECT_EQ(strprintf("%.2f", 1.234), "1.23");
    EXPECT_EQ(strprintf("empty"), "empty");
}

} // anonymous namespace
} // namespace jitsched
