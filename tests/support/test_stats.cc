/**
 * @file
 * Unit tests for the statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hh"
#include "support/stats.hh"

namespace jitsched {
namespace {

TEST(Stats, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
}

TEST(Stats, MeanEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, GeomeanBasic)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 8.0, 27.0}), 6.0, 1e-9);
}

TEST(Stats, GeomeanEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(StatsDeath, GeomeanRejectsNonPositive)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "geomean");
    EXPECT_DEATH(geomean({-1.0}), "geomean");
}

TEST(Stats, StddevKnownValue)
{
    // Sample of {2, 4, 4, 4, 5, 5, 7, 9}: sample variance 32/7.
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, StddevDegenerate)
{
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({3.0}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({3.0, 3.0, 3.0}), 0.0);
}

TEST(Stats, PercentileEndpoints)
{
    std::vector<double> xs{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
}

TEST(Stats, PercentileInterpolates)
{
    // Sorted {10, 20, 30, 40}: p50 -> rank 1.5 -> 25.
    EXPECT_DOUBLE_EQ(percentile({40.0, 10.0, 30.0, 20.0}, 50.0), 25.0);
}

TEST(Stats, PercentileMedianOddCount)
{
    EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Stats, PercentileSingleElement)
{
    EXPECT_DOUBLE_EQ(percentile({7.0}, 33.0), 7.0);
}

TEST(Stats, PercentileEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(StatsDeath, PercentileRejectsBadP)
{
    EXPECT_DEATH(percentile({1.0}, -1.0), "percentile");
    EXPECT_DEATH(percentile({1.0}, 101.0), "percentile");
}

TEST(Summary, EmptyDefaults)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleSample)
{
    Summary s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, TracksMinMaxSum)
{
    Summary s;
    for (const double x : {3.0, -1.0, 7.0, 2.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
    EXPECT_DOUBLE_EQ(s.sum(), 11.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.75);
}

TEST(Summary, MatchesBatchStatistics)
{
    Rng rng(101);
    std::vector<double> xs;
    Summary s;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble(-10.0, 10.0);
        xs.push_back(x);
        s.add(x);
    }
    EXPECT_NEAR(s.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(s.stddev(), stddev(xs), 1e-9);
}

} // anonymous namespace
} // namespace jitsched
