/**
 * @file
 * Unit tests for the deterministic RNG and the Zipf sampler.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "support/rng.hh"

namespace jitsched {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i) {
        if (a.next() != b.next())
            ++differing;
    }
    EXPECT_GT(differing, 28);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextBelowRoughlyUniform)
{
    Rng rng(13);
    std::vector<int> hist(8, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++hist[rng.nextBelow(8)];
    for (const int count : hist) {
        EXPECT_GT(count, n / 8 * 0.9);
        EXPECT_LT(count, n / 8 * 1.1);
    }
}

TEST(Rng, NextRangeInclusiveBounds)
{
    Rng rng(17);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextRangeDegenerate)
{
    Rng rng(19);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.nextRange(5, 5), 5);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(23);
    for (int i = 0; i < 2000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextDoubleRange)
{
    Rng rng(29);
    for (int i = 0; i < 500; ++i) {
        const double d = rng.nextDouble(2.5, 7.5);
        EXPECT_GE(d, 2.5);
        EXPECT_LT(d, 7.5);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(31);
    const int n = 50000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, LogNormalPositive)
{
    Rng rng(37);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.nextLogNormal(0.0, 1.0), 0.0);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(41);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BurstWithinLimits)
{
    Rng rng(43);
    for (int i = 0; i < 1000; ++i) {
        const std::uint32_t b = rng.nextBurst(0.9, 7);
        EXPECT_GE(b, 1u);
        EXPECT_LE(b, 7u);
    }
}

TEST(Rng, BurstZeroProbAlwaysOne)
{
    Rng rng(47);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextBurst(0.0, 10), 1u);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(53);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyPermutes)
{
    Rng rng(59);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i;
    const std::vector<int> orig = v;
    rng.shuffle(v);
    EXPECT_NE(v, orig);
}

TEST(Rng, SplitIsIndependent)
{
    Rng parent(61);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 32; ++i) {
        if (parent.next() == child.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(CaseStream, SamePairSameSequence)
{
    Rng a = Rng::caseStream(5, 17);
    Rng b = Rng::caseStream(5, 17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(CaseStream, IndependentOfOtherStreamsDraws)
{
    // The contract fuzz reproduction rests on: a case's stream is a
    // pure function of (seed, index), untouched by how much entropy
    // earlier cases consumed.
    Rng noisy = Rng::caseStream(9, 0);
    for (int i = 0; i < 1000; ++i)
        noisy.next();
    Rng fresh = Rng::caseStream(9, 1);
    Rng expected = Rng::caseStream(9, 1);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(fresh.next(), expected.next());
}

TEST(CaseStream, AdjacentIndicesDecorrelated)
{
    Rng a = Rng::caseStream(1, 100);
    Rng b = Rng::caseStream(1, 101);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(CaseStream, DifferentSeedsDiffer)
{
    Rng a = Rng::caseStream(1, 7);
    Rng b = Rng::caseStream(2, 7);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(CaseStream, DistinctFromPlainSeeding)
{
    // caseStream(s, 0) must not collide with Rng(s): tools seed both
    // from the same --seed flag.
    Rng a = Rng::caseStream(42, 0);
    Rng b(42);
    EXPECT_NE(a.next(), b.next());
}

TEST(Zipf, ProbabilitiesSumToOne)
{
    const ZipfSampler zipf(50, 1.1);
    double total = 0.0;
    for (std::size_t r = 0; r < zipf.size(); ++r)
        total += zipf.probability(r);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, ProbabilityDecreasesWithRank)
{
    const ZipfSampler zipf(20, 0.8);
    for (std::size_t r = 0; r + 1 < zipf.size(); ++r)
        EXPECT_GE(zipf.probability(r), zipf.probability(r + 1));
}

TEST(Zipf, ZeroSkewIsUniform)
{
    const ZipfSampler zipf(10, 0.0);
    for (std::size_t r = 0; r < 10; ++r)
        EXPECT_NEAR(zipf.probability(r), 0.1, 1e-9);
}

TEST(Zipf, SampleWithinRange)
{
    Rng rng(67);
    const ZipfSampler zipf(13, 1.0);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(zipf.sample(rng), 13u);
}

TEST(Zipf, HigherSkewConcentratesOnRankZero)
{
    Rng rng(71);
    const ZipfSampler flat(100, 0.3);
    const ZipfSampler steep(100, 1.5);
    int flat_zero = 0, steep_zero = 0;
    for (int i = 0; i < 20000; ++i) {
        flat_zero += flat.sample(rng) == 0 ? 1 : 0;
        steep_zero += steep.sample(rng) == 0 ? 1 : 0;
    }
    EXPECT_GT(steep_zero, 2 * flat_zero);
}

TEST(Zipf, SampleFrequenciesMatchProbabilities)
{
    Rng rng(73);
    const ZipfSampler zipf(5, 1.0);
    std::vector<int> hist(5, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++hist[zipf.sample(rng)];
    for (std::size_t r = 0; r < 5; ++r) {
        EXPECT_NEAR(static_cast<double>(hist[r]) / n,
                    zipf.probability(r), 0.01);
    }
}

TEST(ZipfDeath, EmptyPanics)
{
    EXPECT_DEATH(ZipfSampler(0, 1.0), "ZipfSampler");
}

TEST(RngDeath, NextBelowZeroPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.nextBelow(0), "nextBelow");
}

TEST(RngDeath, BadRangePanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.nextRange(3, 2), "nextRange");
}

} // anonymous namespace
} // namespace jitsched
