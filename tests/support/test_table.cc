/**
 * @file
 * Unit tests for the ASCII table printer.
 */

#include <gtest/gtest.h>

#include "support/table.hh"

namespace jitsched {
namespace {

TEST(AsciiTable, ContainsHeadersAndCells)
{
    AsciiTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    const std::string out = t.toString();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("value"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(AsciiTable, RowCount)
{
    AsciiTable t({"a"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"x"});
    t.addSeparator();
    t.addRow({"y"});
    EXPECT_EQ(t.rowCount(), 3u);
}

TEST(AsciiTable, ColumnsAlign)
{
    AsciiTable t({"h", "num"});
    t.addRow({"long-name", "7"});
    t.addRow({"x", "123"});
    const std::string out = t.toString();
    // Every line must be equally wide (borders align).
    std::size_t width = 0;
    std::size_t start = 0;
    while (start < out.size()) {
        const std::size_t end = out.find('\n', start);
        const std::size_t len = end - start;
        if (width == 0)
            width = len;
        EXPECT_EQ(len, width);
        start = end + 1;
    }
}

TEST(AsciiTable, SeparatorAddsBorderLine)
{
    AsciiTable plain({"a"});
    plain.addRow({"1"});
    plain.addRow({"2"});

    AsciiTable with_sep({"a"});
    with_sep.addRow({"1"});
    with_sep.addSeparator();
    with_sep.addRow({"2"});

    auto count_borders = [](const std::string &s) {
        std::size_t n = 0, pos = 0;
        while ((pos = s.find("+--", pos)) != std::string::npos) {
            ++n;
            ++pos;
        }
        return n;
    };
    EXPECT_EQ(count_borders(with_sep.toString()),
              count_borders(plain.toString()) + 1);
}

TEST(AsciiTableDeath, WrongArityPanics)
{
    AsciiTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(AsciiTableDeath, EmptyHeaderPanics)
{
    EXPECT_DEATH(AsciiTable({}), "at least one column");
}

} // anonymous namespace
} // namespace jitsched
