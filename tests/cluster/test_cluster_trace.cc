/**
 * @file
 * The acceptance test for end-to-end distributed tracing: a
 * 2-backend ClusterHarness with the owner killed must produce ONE
 * merged Chrome trace that decomposes the client-visible latency into
 * admission wait, solve, serialize and per-hop route attempts — all
 * sharing the client's trace id — plus router flight records whose
 * hop count exposes the failover, scrapeable over the wire with DUMP.
 */

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/harness.hh"
#include "obs/flight_recorder.hh"
#include "obs/span.hh"
#include "obs/trace_check.hh"
#include "obs/trace_event.hh"
#include "service/client.hh"
#include "service/protocol.hh"
#include "trace/paper_examples.hh"

namespace jitsched {
namespace cluster {
namespace {

/** Same fast health knobs as the router loopback suite. */
ClusterHarnessConfig
fastCluster(std::size_t backends)
{
    ClusterHarnessConfig cfg;
    cfg.backends = backends;
    cfg.router.maxTries = 4;
    cfg.router.tryTimeoutMs = 2000;
    cfg.router.backoffBaseMs = 1;
    cfg.router.backoffMaxMs = 5;
    cfg.router.pool.connectTimeoutMs = 500;
    cfg.router.pool.probeTimeoutMs = 250;
    cfg.router.pool.probeIntervalMs = 10;
    cfg.router.pool.health.suspectAfter = 1;
    cfg.router.pool.health.downAfter = 2;
    cfg.router.pool.health.probeDelayMs = 50;
    cfg.router.pool.health.probeDelayMaxMs = 400;
    cfg.router.pool.health.probeSuccesses = 1;
    return cfg;
}

ServiceRequest
makeRequest(std::uint64_t id, std::uint64_t trace_id)
{
    ServiceRequest req;
    req.id = id;
    req.policy = "iar";
    req.traceId = trace_id;
    req.workload = figure1Workload();
    return req;
}

/** Spans from the global collector belonging to @p trace_id. */
std::vector<obs::Span>
spansOf(std::uint64_t trace_id)
{
    std::vector<obs::Span> out;
    for (obs::Span &s : obs::SpanCollector::global().snapshot())
        if (s.traceId == trace_id)
            out.push_back(std::move(s));
    return out;
}

std::size_t
countNamed(const std::vector<obs::Span> &spans, const char *name)
{
    return static_cast<std::size_t>(std::count_if(
        spans.begin(), spans.end(),
        [name](const obs::Span &s) { return s.name == name; }));
}

std::string
tagOf(const obs::Span &s, const std::string &key)
{
    for (const auto &[k, v] : s.tags)
        if (k == key)
            return v;
    return "";
}

TEST(ClusterTrace, FailoverProducesOneMergedTraceAcrossHops)
{
    obs::SpanCollector::global().clear();
    obs::FlightRecorder::global().clear();

    ClusterHarness cluster(fastCluster(2));
    std::string error;
    ASSERT_TRUE(cluster.start(&error)) << error;

    ServiceClient client;
    ASSERT_TRUE(
        client.connect("127.0.0.1", cluster.routerPort(), &error))
        << error;

    const std::uint64_t trace_id = 0xabcdef12ULL;
    const ServiceRequest req = makeRequest(700, trace_id);

    // Kill the fingerprint's owner so the first hop fails and the
    // router spills to the survivor: the one request spans two
    // backends plus the router, and the trace must still be whole.
    const std::size_t owner =
        cluster.router().ring().ownerOf(requestFingerprint(req));
    cluster.killBackend(owner);

    const auto raw = client.callRaw(requestText(req), &error);
    ASSERT_TRUE(raw.has_value()) << error;
    std::istringstream is(*raw);
    const auto resp = tryReadResponse(is, &error);
    ASSERT_TRUE(resp.has_value()) << error;
    ASSERT_TRUE(resp->ok) << resp->error;

    // The trace id survives the whole relay: client -> router ->
    // surviving backend -> stats line back out.
    EXPECT_EQ(resp->stats.traceId, trace_id);

    // The harness runs router and backends in one process, so the
    // global collector already holds the *merged* trace.
    const std::vector<obs::Span> spans = spansOf(trace_id);

    // Per-hop router spans: the dead owner costs one "retry"
    // attempt, the survivor answers the next one.
    const std::size_t attempts =
        countNamed(spans, "cluster.route_attempt");
    EXPECT_GE(attempts, 2u);
    std::size_t retries = 0, successes = 0;
    for (const obs::Span &s : spans) {
        if (s.name != "cluster.route_attempt")
            continue;
        const std::string outcome = tagOf(s, "outcome");
        EXPECT_FALSE(tagOf(s, "backend").empty());
        if (outcome == "retry")
            ++retries;
        else if (outcome == "spill" || outcome == "ok")
            ++successes;
    }
    EXPECT_GE(retries, 1u) << "the dead owner left no retry span";
    EXPECT_EQ(successes, 1u);

    // Backend-side decomposition on the same trace id.
    EXPECT_EQ(countNamed(spans, "service.admission_wait"), 1u);
    EXPECT_EQ(countNamed(spans, "service.solve"), 1u);
    EXPECT_EQ(countNamed(spans, "service.serialize"), 1u);

    // The merged export is a valid Chrome trace.
    obs::TraceEventSink sink;
    obs::SpanCollector::global().exportTo(sink);
    std::ostringstream os;
    sink.write(os);
    obs::TraceCheckResult res;
    EXPECT_TRUE(obs::checkTraceText(os.str(), &res, &error)) << error;
    EXPECT_GE(res.slices, attempts + 3);

    // The router's flight record counts both hops.
    std::uint32_t max_hops = 0;
    bool router_ok = false;
    for (const obs::FlightRecord &r :
         obs::FlightRecorder::global().snapshot()) {
        if (r.traceId != trace_id)
            continue;
        max_hops = std::max(max_hops, r.hops);
        router_ok = router_ok || (r.hops >= 2 && r.status == "ok");
    }
    EXPECT_GE(max_hops, 2u);
    EXPECT_TRUE(router_ok)
        << "no ok router record with hops >= 2 for the trace";

    // And the same record is scrapeable over the wire: DUMP through
    // the router socket.
    const auto dump = client.dump(701, &error);
    ASSERT_TRUE(dump.has_value()) << error;
    ASSERT_TRUE(dump->ok) << dump->error;
    bool dumped = false;
    for (const obs::FlightRecord &r : dump->records)
        dumped = dumped || (r.traceId == trace_id && r.hops >= 2);
    EXPECT_TRUE(dumped)
        << "DUMP did not surface the 2-hop record";
}

TEST(ClusterTrace, RouterMintsTraceIdsForUntracedRequests)
{
    obs::SpanCollector::global().clear();

    ClusterHarness cluster(fastCluster(2));
    std::string error;
    ASSERT_TRUE(cluster.start(&error)) << error;

    ServiceClient client;
    ASSERT_TRUE(
        client.connect("127.0.0.1", cluster.routerPort(), &error))
        << error;

    // Trace-unaware client: no trace-id option on the wire.
    const ServiceRequest req = makeRequest(710, /*trace_id=*/0);
    const auto raw = client.callRaw(requestText(req), &error);
    ASSERT_TRUE(raw.has_value()) << error;
    std::istringstream is(*raw);
    const auto resp = tryReadResponse(is, &error);
    ASSERT_TRUE(resp.has_value()) << error;
    ASSERT_TRUE(resp->ok) << resp->error;

    // The router minted an id at first contact and the backend
    // echoed it back — the client learns its trace id from the
    // stats line.
    const std::uint64_t minted = resp->stats.traceId;
    EXPECT_NE(minted, 0u);

    // Both layers recorded under the minted id.
    const std::vector<obs::Span> spans = spansOf(minted);
    EXPECT_GE(countNamed(spans, "cluster.route_attempt"), 1u);
    EXPECT_EQ(countNamed(spans, "service.solve"), 1u);
}

TEST(ClusterTrace, RouterAnswersPromStatsScrapes)
{
    ClusterHarness cluster(fastCluster(2));
    std::string error;
    ASSERT_TRUE(cluster.start(&error)) << error;

    ServiceClient client;
    ASSERT_TRUE(
        client.connect("127.0.0.1", cluster.routerPort(), &error))
        << error;

    // Serve one request so the registry is warm.
    const ServiceRequest req = makeRequest(720, 0);
    ASSERT_TRUE(client.callRaw(requestText(req), &error).has_value())
        << error;

    const auto stats = client.stats(721, &error, /*prom=*/true);
    ASSERT_TRUE(stats.has_value()) << error;
    ASSERT_TRUE(stats->ok) << stats->error;
    EXPECT_TRUE(stats->prom);
    bool typed = false;
    for (const std::string &line : stats->lines)
        typed = typed || line.rfind("# TYPE jitsched_", 0) == 0;
    EXPECT_TRUE(typed)
        << "prom scrape carries no '# TYPE jitsched_*' lines";
}

} // anonymous namespace
} // namespace cluster
} // namespace jitsched
