/**
 * @file
 * Consistent-hash ring tests: deterministic ownership, full spill
 * chains, balance across backends, and the stability property the
 * cluster's cache affinity rests on — removing a backend remaps only
 * the keys that backend owned.
 */

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/ring.hh"

namespace jitsched {
namespace cluster {
namespace {

/** splitmix64: a cheap deterministic key stream for the tests. */
std::uint64_t
keyStream(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

TEST(HashRing, SingleBackendOwnsEverything)
{
    const HashRing ring(1);
    std::uint64_t s = 1;
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(ring.ownerOf(keyStream(s)), 0u);
}

TEST(HashRing, OwnershipIsDeterministicAcrossInstances)
{
    // Two routers built from the same backend list must agree on
    // every key — affinity only works if the ring is a pure function
    // of (backends, vnodes).
    const HashRing a(5), b(5);
    std::uint64_t s = 2;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t key = keyStream(s);
        EXPECT_EQ(a.ownerOf(key), b.ownerOf(key));
        EXPECT_EQ(a.ownerChain(key), b.ownerChain(key));
    }
}

TEST(HashRing, ChainListsEveryBackendOnceOwnerFirst)
{
    const HashRing ring(6);
    std::uint64_t s = 3;
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t key = keyStream(s);
        const auto chain = ring.ownerChain(key);
        ASSERT_EQ(chain.size(), 6u);
        EXPECT_EQ(chain.front(), ring.ownerOf(key));
        const std::set<std::size_t> unique(chain.begin(),
                                           chain.end());
        EXPECT_EQ(unique.size(), 6u);
    }
}

TEST(HashRing, RemovingABackendOnlyRemapsItsOwnKeys)
{
    // The cache-affinity argument: shrinking the cluster from 4 to 3
    // backends must leave every key owned by a surviving backend
    // exactly where it was.  Backends 0..2 place identical points in
    // both rings, so only keys owned by backend 3 may move.
    const HashRing four(4), three(3);
    std::uint64_t s = 4;
    std::size_t moved = 0, owned_by_removed = 0;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t key = keyStream(s);
        const std::size_t before = four.ownerOf(key);
        const std::size_t after = three.ownerOf(key);
        if (before == 3) {
            ++owned_by_removed;
            EXPECT_LT(after, 3u);
        } else {
            EXPECT_EQ(after, before);
            moved += (after != before) ? 1 : 0;
        }
    }
    EXPECT_EQ(moved, 0u);
    // Sanity: the removed backend actually owned a real share.
    EXPECT_GT(owned_by_removed, 500u);
}

TEST(HashRing, SharesAreRoughlyBalanced)
{
    const std::size_t backends = 4;
    const HashRing ring(backends);
    std::vector<std::size_t> owned(backends, 0);
    std::uint64_t s = 5;
    const std::size_t keys = 20000;
    for (std::size_t i = 0; i < keys; ++i)
        ++owned[ring.ownerOf(keyStream(s))];
    // 64 vnodes keeps small clusters well within 2x of fair share.
    for (std::size_t b = 0; b < backends; ++b) {
        const double share =
            static_cast<double>(owned[b]) / keys;
        EXPECT_GT(share, 0.125) << "backend " << b;
        EXPECT_LT(share, 0.5) << "backend " << b;
    }
}

TEST(HashRing, MoreVnodesTightenTheBalance)
{
    // Not a strict monotonicity claim — just that the configured
    // default (64) beats a deliberately coarse ring (1 vnode).
    auto spread = [](const HashRing &ring, std::size_t backends) {
        std::vector<std::size_t> owned(backends, 0);
        std::uint64_t s = 6;
        for (int i = 0; i < 20000; ++i)
            ++owned[ring.ownerOf(keyStream(s))];
        std::size_t lo = owned[0], hi = owned[0];
        for (const std::size_t n : owned) {
            lo = std::min(lo, n);
            hi = std::max(hi, n);
        }
        return static_cast<double>(hi) /
               static_cast<double>(lo > 0 ? lo : 1);
    };
    const double coarse = spread(HashRing(4, 1), 4);
    const double fine = spread(HashRing(4, 64), 4);
    EXPECT_LT(fine, coarse);
}

} // anonymous namespace
} // namespace cluster
} // namespace jitsched
