/**
 * @file
 * End-to-end cluster tests on real loopback sockets: an in-process
 * ClusterHarness (N jitschedd backends behind one jitsched-router
 * serving core).  The contract under test is the router's defining
 * one — responses through the router are byte-identical to a direct
 * daemon, stats line aside, for 1, 2 and 4 shards, through backend
 * kills and re-admissions, and under concurrent traffic (the TSan
 * hammer at the bottom).
 */

#include <atomic>
#include <chrono>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/harness.hh"
#include "service/client.hh"
#include "service/engine.hh"
#include "service/protocol.hh"
#include "trace/paper_examples.hh"

namespace jitsched {
namespace cluster {
namespace {

/** Drop the volatile `stats` line; everything else is deterministic. */
std::string
stripStats(const std::string &frame)
{
    std::string out;
    std::istringstream is(frame);
    for (std::string line; std::getline(is, line);)
        if (line.rfind("stats ", 0) != 0)
            out += line + "\n";
    return out;
}

ServiceRequest
makeRequest(std::uint64_t id, const std::string &policy, Workload w)
{
    ServiceRequest req;
    req.id = id;
    req.policy = policy;
    req.workload = std::move(w);
    return req;
}

std::string
malformedFrame(std::uint64_t id)
{
    return "jitsched-request " + std::to_string(id) + "\n" +
           "policy iar\n"
           "payload\n"
           "workload broken\n"
           "levels not-a-number\n"
           "end\n";
}

/** What a direct library call answers for @p req (no stats). */
std::string
directAnswer(ServiceEngine &reference, const ServiceRequest &req)
{
    ServiceResponse resp = reference.serve(req);
    resp.stats = {};
    return responseText(resp, /*include_stats=*/false);
}

/** Harness knobs tuned so health transitions take ms, not seconds. */
ClusterHarnessConfig
fastCluster(std::size_t backends)
{
    ClusterHarnessConfig cfg;
    cfg.backends = backends;
    cfg.router.maxTries = 4;
    cfg.router.tryTimeoutMs = 2000;
    cfg.router.backoffBaseMs = 1;
    cfg.router.backoffMaxMs = 5;
    cfg.router.pool.connectTimeoutMs = 500;
    cfg.router.pool.probeTimeoutMs = 250;
    cfg.router.pool.probeIntervalMs = 10;
    cfg.router.pool.health.suspectAfter = 1;
    cfg.router.pool.health.downAfter = 2;
    cfg.router.pool.health.probeDelayMs = 50;
    cfg.router.pool.health.probeDelayMaxMs = 400;
    cfg.router.pool.health.probeSuccesses = 1;
    return cfg;
}

/** Wait until backend @p b is routable again; false on timeout. */
bool
awaitRoutable(ClusterHarness &cluster, std::size_t b,
              std::chrono::milliseconds budget)
{
    const auto deadline =
        std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
        if (cluster.router().pool().routable(b))
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
}

TEST(RouterLoopback, ByteIdentityAcrossShardCounts)
{
    // The tentpole contract: a client cannot tell the router from a
    // single daemon, whether 1, 2 or 4 backends sit behind it.
    ServiceEngine reference;
    for (const std::size_t backends : {1u, 2u, 4u}) {
        ClusterHarness cluster(fastCluster(backends));
        std::string error;
        ASSERT_TRUE(cluster.start(&error)) << error;

        ServiceClient client;
        ASSERT_TRUE(client.connect("127.0.0.1",
                                   cluster.routerPort(), &error))
            << error;

        std::uint64_t id = 100;
        std::uint64_t frames = 0;
        for (const char *policy :
             {"iar", "base-only", "opt-only", "lower-bound"}) {
            for (const Workload &w :
                 {figure1Workload(), figure2Workload()}) {
                const ServiceRequest req =
                    makeRequest(++id, policy, w);
                const auto raw =
                    client.callRaw(requestText(req), &error);
                ASSERT_TRUE(raw.has_value())
                    << backends << " backends: " << error;
                EXPECT_EQ(stripStats(*raw),
                          directAnswer(reference, req))
                    << backends << " backends, policy " << policy;
                ++frames;
            }
        }
        EXPECT_EQ(cluster.router().framesServed(), frames);
        EXPECT_EQ(cluster.router().requestsFailed(), 0u);
    }
}

TEST(RouterLoopback, MalformedFrameGetsTheDaemonsErrorBytes)
{
    // A malformed frame must come back with the byte-identical
    // structured error a daemon would emit, and the connection must
    // keep working afterwards.
    ClusterHarness cluster(fastCluster(2));
    std::string error;
    ASSERT_TRUE(cluster.start(&error)) << error;

    ServiceEngine direct_engine;
    ServiceServer direct(direct_engine);
    ASSERT_TRUE(direct.start(&error)) << error;

    ServiceClient via_router, via_daemon;
    ASSERT_TRUE(via_router.connect("127.0.0.1",
                                   cluster.routerPort(), &error))
        << error;
    ASSERT_TRUE(
        via_daemon.connect("127.0.0.1", direct.port(), &error))
        << error;

    const std::string bad = malformedFrame(31);
    const auto from_router = via_router.callRaw(bad, &error);
    ASSERT_TRUE(from_router.has_value()) << error;
    const auto from_daemon = via_daemon.callRaw(bad, &error);
    ASSERT_TRUE(from_daemon.has_value()) << error;
    EXPECT_EQ(stripStats(*from_router), stripStats(*from_daemon));

    std::istringstream is(*from_router);
    const auto resp = tryReadResponse(is, &error);
    ASSERT_TRUE(resp.has_value()) << error;
    EXPECT_FALSE(resp->ok);
    EXPECT_EQ(resp->code, errcode::invalidArgument);

    // Framing recovered: the next valid frame on the same connection
    // is served normally.
    ServiceEngine reference;
    const ServiceRequest req =
        makeRequest(32, "iar", figure1Workload());
    const auto raw = via_router.callRaw(requestText(req), &error);
    ASSERT_TRUE(raw.has_value()) << error;
    EXPECT_EQ(stripStats(*raw), directAnswer(reference, req));
}

TEST(RouterLoopback, AffinityKeepsRepeatsOnTheCachedBackend)
{
    // Send distinct requests once to warm each owner's EvalCache,
    // then resend them all.  Affinity must land every repeat on the
    // backend that already holds its evaluations, so the cluster-wide
    // hit count has to climb by at least one per repeat.
    ClusterHarness cluster(fastCluster(2));
    std::string error;
    ASSERT_TRUE(cluster.start(&error)) << error;

    ServiceClient client;
    ASSERT_TRUE(
        client.connect("127.0.0.1", cluster.routerPort(), &error))
        << error;

    std::vector<ServiceRequest> requests;
    for (int cores = 1; cores <= 8; ++cores) {
        ServiceRequest req =
            makeRequest(200 + cores, "iar", figure1Workload());
        req.options.compileCores = cores;
        requests.push_back(req);
    }

    auto clusterHits = [&cluster] {
        std::uint64_t hits = 0;
        for (std::size_t b = 0; b < cluster.backendCount(); ++b)
            hits += cluster.backendEngine(b).cache().hits();
        return hits;
    };

    for (const ServiceRequest &req : requests)
        ASSERT_TRUE(
            client.callRaw(requestText(req), &error).has_value())
            << error;
    const std::uint64_t warm = clusterHits();

    for (const ServiceRequest &req : requests)
        ASSERT_TRUE(
            client.callRaw(requestText(req), &error).has_value())
            << error;
    EXPECT_GE(clusterHits() - warm, requests.size())
        << "repeats were not routed back to their owners";
}

TEST(RouterLoopback, FailoverThenReadmissionAcrossABackendBounce)
{
    ClusterHarness cluster(fastCluster(2));
    std::string error;
    ASSERT_TRUE(cluster.start(&error)) << error;

    ServiceEngine reference;
    ServiceClient client;
    ASSERT_TRUE(
        client.connect("127.0.0.1", cluster.routerPort(), &error))
        << error;

    const ServiceRequest req =
        makeRequest(300, "iar", figure1Workload());
    const std::size_t owner =
        cluster.router().ring().ownerOf(requestFingerprint(req));

    auto roundTrip = [&](std::uint64_t id) {
        ServiceRequest r = req;
        r.id = id;
        ServiceResponse expect = reference.serve(r);
        expect.stats = {};
        const auto raw = client.callRaw(requestText(r), &error);
        ASSERT_TRUE(raw.has_value()) << error;
        EXPECT_EQ(stripStats(*raw),
                  responseText(expect, /*include_stats=*/false));
    };

    roundTrip(300);

    // Kill the owner: requests must keep getting correct answers
    // (spilled to the survivor) while the health machine walks the
    // owner to Down.
    cluster.killBackend(owner);
    std::uint64_t id = 301;
    for (int shot = 0; shot < 20; ++shot) {
        roundTrip(id++);
        if (!cluster.router().pool().routable(owner))
            break;
    }
    EXPECT_FALSE(cluster.router().pool().routable(owner))
        << "owner was never ejected";
    EXPECT_GE(cluster.router().requestsSpilled(), 1u);
    EXPECT_EQ(cluster.router().requestsFailed(), 0u);

    // Ejected backends cost no traffic: requests keep working.
    roundTrip(id++);

    // Bring the owner back; the prober must re-admit it without any
    // client traffic helping.
    ASSERT_TRUE(cluster.restartBackend(owner, &error)) << error;
    ASSERT_TRUE(awaitRoutable(cluster, owner,
                              std::chrono::seconds(5)))
        << "owner not re-admitted within 5s of restart";
    EXPECT_GE(cluster.router().pool().readmissions(owner), 1u);

    // And traffic flows back to it: the owner's cache starts hitting
    // again once repeats are routed home.
    const std::uint64_t owner_hits_before =
        cluster.backendEngine(owner).cache().hits();
    for (int shot = 0; shot < 3; ++shot)
        roundTrip(id++);
    EXPECT_GT(cluster.backendEngine(owner).cache().hits(),
              owner_hits_before)
        << "re-admitted owner is not seeing its keys again";
}

TEST(RouterLoopback, PingAndStatsAreAnsweredByTheRouterItself)
{
    ClusterHarness cluster(fastCluster(2));
    std::string error;
    ASSERT_TRUE(cluster.start(&error)) << error;

    ServiceClient client;
    ASSERT_TRUE(
        client.connect("127.0.0.1", cluster.routerPort(), &error))
        << error;

    EXPECT_TRUE(client.ping(41, &error)) << error;

    const auto stats = client.stats(42, &error);
    ASSERT_TRUE(stats.has_value()) << error;
    EXPECT_TRUE(stats->ok) << stats->error;
    EXPECT_EQ(stats->id, 42u);
}

TEST(RouterLoopback, HedgedRequestsStayByteIdentical)
{
    // hedgeDelayMs = 0: every request races two backends; the first
    // full frame wins and the answer must still be exact.
    ClusterHarnessConfig cfg = fastCluster(2);
    cfg.router.hedgeDelayMs = 0;
    ClusterHarness cluster(cfg);
    std::string error;
    ASSERT_TRUE(cluster.start(&error)) << error;

    ServiceEngine reference;
    ServiceClient client;
    ASSERT_TRUE(
        client.connect("127.0.0.1", cluster.routerPort(), &error))
        << error;

    for (std::uint64_t id = 500; id < 510; ++id) {
        ServiceRequest req =
            makeRequest(id, "iar", figure2Workload());
        req.options.compileCores =
            1 + static_cast<int>(id % 4);
        const auto raw = client.callRaw(requestText(req), &error);
        ASSERT_TRUE(raw.has_value()) << error;
        EXPECT_EQ(stripStats(*raw), directAnswer(reference, req));
    }
    EXPECT_EQ(cluster.router().requestsFailed(), 0u);
}

TEST(RouterLoopback, HammerConcurrentRouteEjectProbe)
{
    // The TSan target: handler-path routing (route() called from
    // many threads), the health machinery digesting failures, and
    // the prober re-admitting — all while a backend bounces.  Every
    // answer must still be byte-exact; the survivors cover the
    // bounced backend's keys.
    ClusterHarness cluster(fastCluster(3));
    std::string error;
    ASSERT_TRUE(cluster.start(&error)) << error;

    // Precompute expected bytes before any thread starts; the
    // reference engine is not thread-safe.  Keep scanning variants
    // until one is owned by the backend the bouncer will kill, so
    // each bounce round is guaranteed to eject it.
    ServiceEngine reference;
    struct Variant
    {
        ServiceRequest req;
        std::string want;
    };
    std::vector<Variant> variants;
    std::optional<ServiceRequest> owned_by_bounced;
    const std::size_t bounced = 2;
    for (int cores = 1; cores <= 64; ++cores) {
        ServiceRequest req =
            makeRequest(600, "iar", figure1Workload());
        req.options.compileCores = cores;
        if (variants.size() < 6) {
            ServiceResponse resp = reference.serve(req);
            resp.stats = {};
            variants.push_back(
                {req, responseText(resp, /*include_stats=*/false)});
        }
        if (!owned_by_bounced.has_value() &&
            cluster.router().ring().ownerOf(
                requestFingerprint(req)) == bounced)
            owned_by_bounced = req;
        if (variants.size() >= 6 && owned_by_bounced.has_value())
            break;
    }
    ASSERT_TRUE(owned_by_bounced.has_value())
        << "no probe key owned by the bounced backend";

    std::atomic<std::uint64_t> mismatches{0};
    std::atomic<std::uint64_t> answered{0};
    const int kThreads = 4;
    const int kIters = 25;

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                const std::size_t pick =
                    static_cast<std::size_t>(t * kIters + i) %
                    variants.size();
                const std::string got =
                    cluster.router().route(variants[pick].req);
                ++answered;
                if (stripStats(got) != variants[pick].want)
                    ++mismatches;
            }
        });
    }

    std::thread bouncer([&] {
        for (int round = 0; round < 3; ++round) {
            cluster.killBackend(bounced);
            // Drive the dead owner's key until the health machine
            // ejects it (every try is an instant connect refusal).
            for (int i = 0;
                 i < 50 &&
                 cluster.router().pool().routable(bounced);
                 ++i)
                cluster.router().route(*owned_by_bounced);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(30));
            std::string restart_error;
            if (!cluster.restartBackend(bounced, &restart_error))
                return; // the joined asserts below will catch this
            if (!awaitRoutable(cluster, bounced,
                               std::chrono::seconds(5)))
                return;
        }
    });

    for (std::thread &w : workers)
        w.join();
    bouncer.join();

    EXPECT_EQ(answered.load(),
              static_cast<std::uint64_t>(kThreads * kIters));
    EXPECT_EQ(mismatches.load(), 0u)
        << "a routed answer diverged during the bounce";

    // The bounced backend must have been re-admitted at least once.
    EXPECT_GE(cluster.router().pool().readmissions(bounced), 1u);
    ASSERT_TRUE(
        awaitRoutable(cluster, bounced, std::chrono::seconds(5)));
}

} // anonymous namespace
} // namespace cluster
} // namespace jitsched
