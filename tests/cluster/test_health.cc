/**
 * @file
 * Fake-clock tests for the backend health machinery: the rolling
 * error window, the circuit breaker, and the
 * Healthy -> Suspect -> Down -> Probing -> Healthy walk with
 * probe-failure backoff.  Every transition takes the current time as
 * an argument, so a whole outage runs in microseconds here.
 */

#include <chrono>

#include <gtest/gtest.h>

#include "cluster/backend.hh"

namespace jitsched {
namespace cluster {
namespace {

using Clock = HealthMachine::Clock;

Clock::time_point
t0()
{
    return Clock::time_point(std::chrono::milliseconds(1000000));
}

std::chrono::milliseconds
ms(int n)
{
    return std::chrono::milliseconds(n);
}

TEST(RollingWindow, CountsWithinTheWindow)
{
    auto now = t0();
    RollingWindow w(/*window_ms=*/1000, /*buckets=*/10, now);
    EXPECT_EQ(w.total(now), 0u);
    EXPECT_DOUBLE_EQ(w.errorRate(now), 0.0);

    w.record(true, now);
    w.record(false, now + ms(50));
    w.record(false, now + ms(150));
    now += ms(200);
    EXPECT_EQ(w.total(now), 3u);
    EXPECT_EQ(w.failures(now), 2u);
    EXPECT_DOUBLE_EQ(w.errorRate(now), 2.0 / 3.0);
}

TEST(RollingWindow, OldSamplesExpire)
{
    auto now = t0();
    RollingWindow w(1000, 10, now);
    for (int i = 0; i < 5; ++i)
        w.record(false, now);
    EXPECT_DOUBLE_EQ(w.errorRate(now), 1.0);

    // A window-and-a-bucket later everything has rotated out.
    now += ms(1100);
    EXPECT_EQ(w.total(now), 0u);
    EXPECT_DOUBLE_EQ(w.errorRate(now), 0.0);
}

TEST(RollingWindow, ResetClearsEverything)
{
    auto now = t0();
    RollingWindow w(1000, 10, now);
    w.record(false, now);
    w.reset(now);
    EXPECT_EQ(w.total(now), 0u);
}

HealthConfig
fastConfig()
{
    HealthConfig cfg;
    cfg.suspectAfter = 1;
    cfg.downAfter = 3;
    cfg.probeDelayMs = 100;
    cfg.probeDelayMaxMs = 400;
    cfg.probeSuccesses = 2;
    return cfg;
}

TEST(HealthMachine, StartsHealthyAndRoutable)
{
    HealthMachine hm(fastConfig(), t0());
    EXPECT_EQ(hm.state(), HealthState::Healthy);
    EXPECT_TRUE(hm.routable());
    EXPECT_EQ(hm.ejections(), 0u);
}

TEST(HealthMachine, ConsecutiveFailuresWalkToDown)
{
    auto now = t0();
    HealthMachine hm(fastConfig(), now);

    hm.onResult(false, now);
    EXPECT_EQ(hm.state(), HealthState::Suspect);
    EXPECT_TRUE(hm.routable()) << "Suspect still takes traffic";

    hm.onResult(false, now += ms(10));
    EXPECT_EQ(hm.state(), HealthState::Suspect);

    hm.onResult(false, now += ms(10));
    EXPECT_EQ(hm.state(), HealthState::Down);
    EXPECT_FALSE(hm.routable());
    EXPECT_EQ(hm.ejections(), 1u);
}

TEST(HealthMachine, ASuccessResetsTheStreak)
{
    auto now = t0();
    HealthMachine hm(fastConfig(), now);
    hm.onResult(false, now);
    hm.onResult(false, now += ms(10));
    EXPECT_EQ(hm.state(), HealthState::Suspect);

    hm.onResult(true, now += ms(10));
    EXPECT_EQ(hm.state(), HealthState::Healthy);

    // The streak restarted: two more failures only reach Suspect.
    hm.onResult(false, now += ms(10));
    hm.onResult(false, now += ms(10));
    EXPECT_EQ(hm.state(), HealthState::Suspect);
    EXPECT_EQ(hm.ejections(), 0u);
}

TEST(HealthMachine, BreakerTripsOnErrorRateDespiteSuccesses)
{
    // Alternating ok/fail never builds a downAfter streak, but the
    // windowed error rate reaches 50% at the minimum sample count —
    // the case the breaker exists for.
    HealthConfig cfg = fastConfig();
    cfg.downAfter = 100; // keep the consecutive path out of the way
    cfg.breakerMinSamples = 8;
    cfg.breakerMaxErrorRate = 0.5;

    auto now = t0();
    HealthMachine hm(cfg, now);
    for (int i = 0; i < 3; ++i) {
        hm.onResult(true, now += ms(10));
        hm.onResult(false, now += ms(10));
        EXPECT_TRUE(hm.routable());
    }
    hm.onResult(true, now += ms(10));
    EXPECT_TRUE(hm.routable()) << "7 samples: below minSamples";
    hm.onResult(false, now += ms(10));
    EXPECT_EQ(hm.state(), HealthState::Down)
        << "8th sample reaches 4/8 = 50% error rate";
    EXPECT_EQ(hm.ejections(), 1u);
}

TEST(HealthMachine, DownIgnoresStragglerResults)
{
    auto now = t0();
    HealthMachine hm(fastConfig(), now);
    for (int i = 0; i < 3; ++i)
        hm.onResult(false, now += ms(10));
    ASSERT_EQ(hm.state(), HealthState::Down);

    // Requests in flight at ejection time report late; the probe
    // cycle owns the state now.
    hm.onResult(true, now += ms(10));
    EXPECT_EQ(hm.state(), HealthState::Down);
}

TEST(HealthMachine, ProbeTimerGatesDownToProbing)
{
    auto now = t0();
    HealthMachine hm(fastConfig(), now);
    for (int i = 0; i < 3; ++i)
        hm.onResult(false, now);
    ASSERT_EQ(hm.state(), HealthState::Down);

    EXPECT_FALSE(hm.wantsProbe(now + ms(99)));
    EXPECT_EQ(hm.state(), HealthState::Down);

    EXPECT_TRUE(hm.wantsProbe(now + ms(100)));
    EXPECT_EQ(hm.state(), HealthState::Probing);
    EXPECT_FALSE(hm.routable());

    // Exactly one caller wins the probe.
    EXPECT_FALSE(hm.wantsProbe(now + ms(100)));
}

TEST(HealthMachine, FailedProbesBackOffWithDoublingDelay)
{
    auto now = t0();
    HealthMachine hm(fastConfig(), now);
    for (int i = 0; i < 3; ++i)
        hm.onResult(false, now);
    ASSERT_TRUE(hm.wantsProbe(now += ms(100)));

    // 1st failure: delay doubles to 200ms.
    hm.onProbe(false, now);
    EXPECT_EQ(hm.state(), HealthState::Down);
    EXPECT_FALSE(hm.wantsProbe(now + ms(199)));
    ASSERT_TRUE(hm.wantsProbe(now += ms(200)));

    // 2nd failure: 400ms, the configured cap.
    hm.onProbe(false, now);
    EXPECT_FALSE(hm.wantsProbe(now + ms(399)));
    ASSERT_TRUE(hm.wantsProbe(now += ms(400)));

    // 3rd failure: still capped at 400ms.
    hm.onProbe(false, now);
    EXPECT_FALSE(hm.wantsProbe(now + ms(399)));
    EXPECT_TRUE(hm.wantsProbe(now += ms(400)));
}

TEST(HealthMachine, ReadmissionNeedsTheFullProbeStreak)
{
    auto now = t0();
    HealthMachine hm(fastConfig(), now);
    for (int i = 0; i < 3; ++i)
        hm.onResult(false, now);
    ASSERT_TRUE(hm.wantsProbe(now += ms(100)));

    hm.onProbe(true, now += ms(5));
    EXPECT_EQ(hm.state(), HealthState::Probing)
        << "one ok probe of two: not yet re-admitted";
    EXPECT_FALSE(hm.routable());

    hm.onProbe(true, now += ms(5));
    EXPECT_EQ(hm.state(), HealthState::Healthy);
    EXPECT_TRUE(hm.routable());
    EXPECT_EQ(hm.readmissions(), 1u);

    // Re-admission resets the books: the breaker window and the
    // failure streak start clean, so one failure is only Suspect.
    hm.onResult(false, now += ms(5));
    EXPECT_EQ(hm.state(), HealthState::Suspect);
}

TEST(HealthMachine, ProbeFailureRestartsTheStreak)
{
    HealthConfig cfg = fastConfig();
    cfg.probeSuccesses = 2;
    auto now = t0();
    HealthMachine hm(cfg, now);
    for (int i = 0; i < 3; ++i)
        hm.onResult(false, now);
    ASSERT_TRUE(hm.wantsProbe(now += ms(100)));

    hm.onProbe(true, now += ms(5));
    hm.onProbe(false, now += ms(5));
    ASSERT_EQ(hm.state(), HealthState::Down);

    // Back to Probing after the backoff; the old partial streak must
    // not count toward re-admission.
    ASSERT_TRUE(hm.wantsProbe(now += ms(200)));
    hm.onProbe(true, now += ms(5));
    EXPECT_EQ(hm.state(), HealthState::Probing);
    hm.onProbe(true, now += ms(5));
    EXPECT_EQ(hm.state(), HealthState::Healthy);
}

} // anonymous namespace
} // namespace cluster
} // namespace jitsched
