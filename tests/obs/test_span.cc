/**
 * @file
 * SpanCollector and trace-id unit tests: id minting/parsing, the
 * bounded ring, Chrome export with per-trace virtual tids, and a
 * concurrency hammer (SpanConcurrency*, which the TSan job runs).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/span.hh"
#include "obs/trace_check.hh"
#include "obs/trace_event.hh"

using namespace jitsched;
using namespace jitsched::obs;

TEST(TraceId, MintedIdsAreNonzeroAndDistinct)
{
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t id = mintTraceId();
        EXPECT_NE(id, 0u);
        seen.insert(id);
    }
    // splitmix64-mixed ids: collisions in 1000 draws would mean the
    // mixing is broken, not bad luck.
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(TraceId, HexRoundTrip)
{
    for (const std::uint64_t id :
         {std::uint64_t{1}, std::uint64_t{0xdeadbeef},
          std::uint64_t{0xffffffffffffffffULL}, mintTraceId()}) {
        const std::string hex = traceIdHex(id);
        const auto back = parseTraceIdHex(hex);
        ASSERT_TRUE(back.has_value()) << hex;
        EXPECT_EQ(*back, id);
    }
    EXPECT_EQ(traceIdHex(0), "0");
    EXPECT_EQ(traceIdHex(0x1a2b), "1a2b");
}

TEST(TraceId, ParseAcceptsBothCasesAndLeadingZeros)
{
    EXPECT_EQ(parseTraceIdHex("DeadBeef"),
              std::optional<std::uint64_t>(0xdeadbeefULL));
    EXPECT_EQ(parseTraceIdHex("0001"),
              std::optional<std::uint64_t>(1));
    EXPECT_EQ(parseTraceIdHex("ffffffffffffffff"),
              std::optional<std::uint64_t>(0xffffffffffffffffULL));
}

TEST(TraceId, ParseRejectsMalformedIds)
{
    EXPECT_FALSE(parseTraceIdHex("").has_value());
    EXPECT_FALSE(parseTraceIdHex("0").has_value());   // zero = untraced
    EXPECT_FALSE(parseTraceIdHex("0000").has_value());
    EXPECT_FALSE(parseTraceIdHex("xyz").has_value());
    EXPECT_FALSE(parseTraceIdHex("12g4").has_value());
    EXPECT_FALSE(parseTraceIdHex("0x12").has_value()); // no prefix
    EXPECT_FALSE(parseTraceIdHex(" 12").has_value());
    EXPECT_FALSE(parseTraceIdHex("12 ").has_value());
    EXPECT_FALSE(parseTraceIdHex("-1").has_value());
    // 17 digits overflows the 64-bit id even if all are valid hex.
    EXPECT_FALSE(parseTraceIdHex("11111111111111111").has_value());
}

TEST(SpanCollector, RecordsAndSnapshotsInOrder)
{
    SpanCollector c(8);
    for (int i = 0; i < 5; ++i) {
        Span s;
        s.traceId = 7;
        s.name = "s" + std::to_string(i);
        s.startNs = i * 10;
        s.durNs = 5;
        c.record(std::move(s));
    }
    const auto spans = c.snapshot();
    ASSERT_EQ(spans.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(spans[i].name, "s" + std::to_string(i));
    EXPECT_EQ(c.dropped(), 0u);
}

TEST(SpanCollector, RingOverwritesOldestFirst)
{
    SpanCollector c(4);
    for (int i = 0; i < 10; ++i) {
        Span s;
        s.traceId = 1;
        s.name = "s" + std::to_string(i);
        c.record(std::move(s));
    }
    const auto spans = c.snapshot();
    ASSERT_EQ(spans.size(), 4u);
    // The last 4 of 10, oldest first.
    EXPECT_EQ(spans[0].name, "s6");
    EXPECT_EQ(spans[3].name, "s9");
    EXPECT_EQ(c.dropped(), 6u);

    c.clear();
    EXPECT_TRUE(c.snapshot().empty());
    EXPECT_EQ(c.dropped(), 0u);
}

TEST(SpanCollector, RecordBetweenSkipsUntracedAndClampsDuration)
{
    SpanCollector c(8);
    const auto now = std::chrono::steady_clock::now();
    c.recordBetween(0, "untraced", now,
                    now + std::chrono::milliseconds(1));
    EXPECT_TRUE(c.snapshot().empty());

    // t1 < t0 (clock shuffle across threads) clamps to zero, never
    // negative — Chrome refuses negative durations.
    c.recordBetween(5, "backwards", now + std::chrono::seconds(1),
                    now);
    const auto spans = c.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].durNs, 0);
}

TEST(SpanCollector, DisabledCollectorDropsEverything)
{
    SpanCollector c(8);
    const bool was = SpanCollector::setEnabled(false);
    Span s;
    s.traceId = 9;
    s.name = "dropped";
    c.record(std::move(s));
    ScopedSpan scoped(9, "also.dropped");
    SpanCollector::setEnabled(was);
    EXPECT_TRUE(c.snapshot().empty());
}

TEST(SpanCollector, ExportAssignsOneVirtualTidPerTrace)
{
    SpanCollector c(16);
    // Two traces, interleaved as a worker pool would produce them.
    for (int i = 0; i < 3; ++i) {
        Span a;
        a.traceId = 0xaaa;
        a.name = "service.solve";
        a.startNs = i * 100;
        a.durNs = 10;
        c.record(std::move(a));
        Span b;
        b.traceId = 0xbbb;
        b.name = "service.solve";
        b.startNs = i * 100 + 50;
        b.durNs = 10;
        c.record(std::move(b));
    }
    TraceEventSink sink;
    c.exportTo(sink);

    std::set<std::uint32_t> tids_a, tids_b;
    bool named_a = false, named_b = false;
    for (const TraceEvent &e : sink.events()) {
        if (e.ph == 'M' && e.name == "thread_name") {
            for (const auto &[k, v] : e.args) {
                named_a = named_a || v == "trace aaa";
                named_b = named_b || v == "trace bbb";
            }
            continue;
        }
        if (e.ph != 'X')
            continue;
        for (const auto &[k, v] : e.args) {
            if (k != "trace")
                continue;
            if (v == "aaa")
                tids_a.insert(e.tid);
            else if (v == "bbb")
                tids_b.insert(e.tid);
        }
        EXPECT_EQ(e.cat, "span");
    }
    EXPECT_TRUE(named_a);
    EXPECT_TRUE(named_b);
    ASSERT_EQ(tids_a.size(), 1u);
    ASSERT_EQ(tids_b.size(), 1u);
    EXPECT_NE(*tids_a.begin(), *tids_b.begin());
}

TEST(SpanCollector, ExportedTraceValidates)
{
    SpanCollector c(16);
    // One request's shape: wait then solve-with-nested-serialize on
    // the same trace (one virtual track).
    c.record({0x77, "service.admission_wait", 0, 100, {}});
    c.record({0x77, "service.solve", 100, 200, {}});
    c.record({0x77, "service.serialize", 300, 50, {}});
    TraceEventSink sink;
    c.exportTo(sink);
    std::ostringstream os;
    sink.write(os);

    TraceCheckResult res;
    std::string error;
    EXPECT_TRUE(checkTraceText(os.str(), &res, &error)) << error;
    EXPECT_EQ(res.slices, 3u);
}

TEST(ScopedSpan, RecordsIntoGlobalWithTags)
{
    SpanCollector::global().clear();
    {
        ScopedSpan span(0x42, "test.scope");
        span.tag("k", "v");
    }
    const auto spans = SpanCollector::global().snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].traceId, 0x42u);
    EXPECT_EQ(spans[0].name, "test.scope");
    ASSERT_EQ(spans[0].tags.size(), 1u);
    EXPECT_EQ(spans[0].tags[0].first, "k");
    EXPECT_EQ(spans[0].tags[0].second, "v");
    EXPECT_GE(spans[0].durNs, 0);
    SpanCollector::global().clear();
}

TEST(ScopedSpan, ZeroTraceIdIsANoOp)
{
    SpanCollector::global().clear();
    {
        ScopedSpan span(0, "never.recorded");
        span.tag("k", "v");
    }
    EXPECT_TRUE(SpanCollector::global().snapshot().empty());
}

/** TSan target: concurrent record/snapshot/export must be clean. */
TEST(SpanConcurrency, HammerRecordSnapshotExport)
{
    SpanCollector c(256);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 2000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c, t] {
            for (int i = 0; i < kPerThread; ++i) {
                Span s;
                s.traceId =
                    static_cast<std::uint64_t>(t) * 100000 + i + 1;
                s.name = "hammer";
                s.startNs = i;
                s.durNs = 1;
                c.record(std::move(s));
                if (i % 512 == 0) {
                    (void)c.snapshot();
                    TraceEventSink sink;
                    c.exportTo(sink);
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c.snapshot().size(), 256u);
    EXPECT_EQ(c.dropped(),
              static_cast<std::uint64_t>(kThreads) * kPerThread - 256);
}
