/**
 * @file
 * FlightRecorder unit tests: the striped ring, dump-line rendering,
 * the JITSCHED_SLOW_MS parser, and a concurrency hammer
 * (FlightRecorderConcurrency*, which the TSan job runs).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hh"

using namespace jitsched;
using namespace jitsched::obs;

namespace {

FlightRecord
makeRecord(std::uint64_t request_id)
{
    FlightRecord r;
    r.traceId = request_id * 31 + 1;
    r.requestId = request_id;
    r.policy = "iar";
    r.status = "ok";
    r.queueNs = 10;
    r.solveNs = 20;
    r.bytes = 100;
    r.hops = 0;
    return r;
}

} // namespace

TEST(FlightRecorder, SnapshotIsCompletionOrdered)
{
    FlightRecorder rec(64);
    for (std::uint64_t i = 0; i < 10; ++i)
        rec.record(makeRecord(i));
    const auto records = rec.snapshot();
    ASSERT_EQ(records.size(), 10u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].requestId, i);
        if (i > 0) {
            EXPECT_LT(records[i - 1].seq, records[i].seq);
        }
    }
    EXPECT_EQ(rec.recorded(), 10u);
}

TEST(FlightRecorder, RingKeepsTheLastCapacityRecords)
{
    FlightRecorder rec(16);
    EXPECT_EQ(rec.capacity(), 16u);
    for (std::uint64_t i = 0; i < 100; ++i)
        rec.record(makeRecord(i));
    const auto records = rec.snapshot();
    ASSERT_EQ(records.size(), 16u);
    // The survivors are exactly the most recent 16 completions.
    for (const FlightRecord &r : records)
        EXPECT_GE(r.requestId, 84u);
    EXPECT_EQ(rec.recorded(), 100u);

    rec.clear();
    EXPECT_TRUE(rec.snapshot().empty());
    EXPECT_EQ(rec.recorded(), 0u);
}

TEST(FlightRecorder, CapacityIsRoundedUpToTheStripes)
{
    // A capacity below the stripe count still gives every stripe one
    // slot; the ring never silently drops to zero slots.
    FlightRecorder rec(1);
    EXPECT_GE(rec.capacity(), 8u);
}

TEST(FlightRecorder, RecordLineFormat)
{
    FlightRecord r;
    r.traceId = 0xdeadbeef;
    r.requestId = 42;
    r.policy = "astar";
    r.status = "ok";
    r.queueNs = 1000;
    r.solveNs = 2000;
    r.bytes = 512;
    r.hops = 2;
    r.cached = true;
    EXPECT_EQ(FlightRecorder::recordLine(r),
              "trace deadbeef request 42 policy astar status ok "
              "queue-ns 1000 solve-ns 2000 bytes 512 hops 2 "
              "cached 1");

    // Untraced + empty strings render as placeholders, keeping the
    // line a fixed sequence of key/value pairs.
    FlightRecord bare;
    bare.requestId = 7;
    EXPECT_EQ(FlightRecorder::recordLine(bare),
              "trace 0 request 7 policy - status - queue-ns 0 "
              "solve-ns 0 bytes 0 hops 0 cached 0");
}

TEST(FlightRecorder, DumpTextIsOneLinePerRecord)
{
    FlightRecorder rec(64);
    rec.record(makeRecord(1));
    rec.record(makeRecord(2));
    const std::string dump = rec.dumpText();
    EXPECT_NE(dump.find("request 1 "), std::string::npos);
    EXPECT_NE(dump.find("request 2 "), std::string::npos);
    EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);
}

TEST(SlowMsEnv, UnsetOrEmptyDisables)
{
    EXPECT_EQ(parseSlowMsEnv(nullptr), -1);
    EXPECT_EQ(parseSlowMsEnv(""), -1);
}

TEST(SlowMsEnv, ParsesNonNegativeIntegers)
{
    EXPECT_EQ(parseSlowMsEnv("0"), 0);
    EXPECT_EQ(parseSlowMsEnv("250"), 250);
    EXPECT_EQ(parseSlowMsEnv(" 42 "), 42); // trimmed like the others
}

using SlowMsEnvDeathTest = ::testing::Test;

TEST(SlowMsEnvDeathTest, RejectsGarbageLoudly)
{
    // A typo must not silently disable the slow-request log.
    EXPECT_DEATH((void)parseSlowMsEnv("fast"), "JITSCHED_SLOW_MS");
    EXPECT_DEATH((void)parseSlowMsEnv("-5"), "JITSCHED_SLOW_MS");
    EXPECT_DEATH((void)parseSlowMsEnv("10ms"), "JITSCHED_SLOW_MS");
}

/** TSan target: concurrent record/snapshot must be clean. */
TEST(FlightRecorderConcurrency, HammerRecordSnapshot)
{
    FlightRecorder rec(128);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 4000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&rec, t] {
            for (int i = 0; i < kPerThread; ++i) {
                rec.record(makeRecord(
                    static_cast<std::uint64_t>(t) * kPerThread + i));
                if (i % 1024 == 0)
                    (void)rec.snapshot();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(rec.recorded(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);

    // Every retained seq is unique and the snapshot is sorted.
    const auto records = rec.snapshot();
    EXPECT_EQ(records.size(), 128u);
    std::set<std::uint64_t> seqs;
    for (std::size_t i = 0; i < records.size(); ++i) {
        seqs.insert(records[i].seq);
        if (i > 0) {
            EXPECT_LT(records[i - 1].seq, records[i].seq);
        }
    }
    EXPECT_EQ(seqs.size(), records.size());
}
