/**
 * @file
 * jitsched-trace-check validator tests: well-formed traces pass;
 * torn B/E pairs, cross-track confusion, and partially overlapping
 * slices are rejected with pointed errors.  The torn-trace cases are
 * reproducers for the failure modes the B/E machinery exists to
 * catch — a crashed exporter, an E on the wrong thread, interleaved
 * requests sharing a track.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/trace_check.hh"
#include "obs/trace_event.hh"

using namespace jitsched;
using namespace jitsched::obs;

namespace {

/** Wrap event-array JSON in the document envelope. */
std::string
doc(const std::string &events)
{
    return "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [" +
           events + "]}";
}

std::string
slice(const char *name, double ts, double dur, int tid = 1)
{
    std::ostringstream os;
    os << "{\"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
       << ", \"name\": \"" << name << "\", \"ts\": " << ts
       << ", \"dur\": " << dur << "}";
    return os.str();
}

std::string
mark(const char *ph, const char *name, double ts, int tid = 1)
{
    std::ostringstream os;
    os << "{\"ph\": \"" << ph << "\", \"pid\": 1, \"tid\": " << tid
       << ", \"name\": \"" << name << "\", \"ts\": " << ts << "}";
    return os.str();
}

} // namespace

TEST(TraceCheck, AcceptsNestedAndDisjointSlices)
{
    TraceCheckResult res;
    std::string error;
    const std::string text =
        doc(slice("outer", 0, 100) + ", " + slice("inner", 10, 20) +
            ", " + slice("inner2", 40, 20) + ", " +
            slice("later", 200, 50));
    EXPECT_TRUE(checkTraceText(text, &res, &error)) << error;
    EXPECT_EQ(res.events, 4u);
    EXPECT_EQ(res.slices, 4u);
}

TEST(TraceCheck, AcceptsSharedBoundariesAndZeroDuration)
{
    std::string error;
    // back-to-back (end == next start), child ending exactly at the
    // parent's end, and a zero-duration slice at a boundary.
    const std::string text =
        doc(slice("a", 0, 50) + ", " + slice("b", 50, 50) + ", " +
            slice("child", 60, 40) + ", " + slice("instant", 50, 0));
    EXPECT_TRUE(checkTraceText(text, nullptr, &error)) << error;
}

TEST(TraceCheck, RejectsPartialOverlapOnOneTrack)
{
    std::string error;
    const std::string text =
        doc(slice("a", 0, 100) + ", " + slice("b", 50, 100));
    EXPECT_FALSE(checkTraceText(text, nullptr, &error));
    EXPECT_NE(error.find("partially overlaps"), std::string::npos)
        << error;
}

TEST(TraceCheck, AllowsOverlapAcrossTracks)
{
    std::string error;
    // The same intervals are fine on different tids — that is the
    // whole point of per-trace virtual tracks.
    const std::string text = doc(slice("a", 0, 100, /*tid=*/1) +
                                 ", " + slice("b", 50, 100, 2));
    EXPECT_TRUE(checkTraceText(text, nullptr, &error)) << error;
}

TEST(TraceCheck, AcceptsBalancedBeginEndPairs)
{
    TraceCheckResult res;
    std::string error;
    const std::string text =
        doc(mark("B", "outer", 0) + ", " + mark("B", "inner", 10) +
            ", " + mark("E", "inner", 20) + ", " +
            mark("E", "outer", 30) + ", " + slice("x", 40, 5));
    EXPECT_TRUE(checkTraceText(text, &res, &error)) << error;
    EXPECT_EQ(res.events, 5u);
    EXPECT_EQ(res.slices, 1u);
}

TEST(TraceCheck, RejectsTornTraceUnclosedBegin)
{
    std::string error;
    // Reproducer: exporter died between B and E.
    const std::string text =
        doc(mark("B", "outer", 0) + ", " + slice("x", 10, 5));
    EXPECT_FALSE(checkTraceText(text, nullptr, &error));
    EXPECT_NE(error.find("torn trace"), std::string::npos) << error;
    EXPECT_NE(error.find("outer"), std::string::npos) << error;
}

TEST(TraceCheck, RejectsEndWithoutBegin)
{
    std::string error;
    const std::string text =
        doc(mark("E", "ghost", 5) + ", " + slice("x", 10, 5));
    EXPECT_FALSE(checkTraceText(text, nullptr, &error));
    EXPECT_NE(error.find("no open 'B'"), std::string::npos) << error;
}

TEST(TraceCheck, RejectsMisnestedBeginEndNames)
{
    std::string error;
    // Reproducer: E closes the outer span while the inner is open —
    // the interleaving a shared mutable track produces.
    const std::string text =
        doc(mark("B", "outer", 0) + ", " + mark("B", "inner", 10) +
            ", " + mark("E", "outer", 20) + ", " +
            mark("E", "inner", 30) + ", " + slice("x", 40, 5));
    EXPECT_FALSE(checkTraceText(text, nullptr, &error));
    EXPECT_NE(error.find("does not match the innermost open 'B'"),
              std::string::npos)
        << error;
}

TEST(TraceCheck, TracksBeginEndPerTidSeparately)
{
    std::string error;
    // The same B/E interleaving split across two tids is fine: each
    // track's stack balances on its own.
    const std::string text =
        doc(mark("B", "outer", 0, 1) + ", " +
            mark("B", "inner", 10, 2) + ", " +
            mark("E", "outer", 20, 1) + ", " +
            mark("E", "inner", 30, 2) + ", " + slice("x", 40, 5));
    EXPECT_TRUE(checkTraceText(text, nullptr, &error)) << error;

    // ...but an E on the wrong tid is an orphan, not a close.
    const std::string torn =
        doc(mark("B", "outer", 0, 1) + ", " +
            mark("E", "outer", 20, 2) + ", " + slice("x", 40, 5));
    EXPECT_FALSE(checkTraceText(torn, nullptr, &error));
}

TEST(TraceCheck, RejectsEmptyAndMalformedDocuments)
{
    std::string error;
    EXPECT_FALSE(checkTraceText("", nullptr, &error));
    EXPECT_NE(error.find("invalid JSON"), std::string::npos);

    EXPECT_FALSE(checkTraceText("[1, 2]", nullptr, &error));
    EXPECT_NE(error.find("not an object"), std::string::npos);

    EXPECT_FALSE(checkTraceText("{\"a\": 1}", nullptr, &error));
    EXPECT_NE(error.find("traceEvents"), std::string::npos);

    // A slice-free trace is vacuous — the smoke scripts must not
    // "pass" on an exporter that wrote nothing.
    EXPECT_FALSE(checkTraceText(doc(mark("B", "a", 0) + ", " +
                                    mark("E", "a", 1)),
                                nullptr, &error));
    EXPECT_NE(error.find("no 'X' slices"), std::string::npos);
}

TEST(TraceCheck, RejectsNegativeDurationAndMissingFields)
{
    std::string error;
    EXPECT_FALSE(checkTraceText(
        doc("{\"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"name\": "
            "\"a\", \"ts\": 0, \"dur\": -5}"),
        nullptr, &error));
    EXPECT_NE(error.find("negative 'dur'"), std::string::npos);

    EXPECT_FALSE(checkTraceText(
        doc("{\"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"name\": "
            "\"a\", \"ts\": 0}"),
        nullptr, &error));
    EXPECT_NE(error.find("'ts'/'dur'"), std::string::npos);

    EXPECT_FALSE(checkTraceText(
        doc("{\"ph\": \"B\", \"pid\": 1, \"tid\": 1, \"name\": "
            "\"a\"}"),
        nullptr, &error));
    EXPECT_NE(error.find("numeric 'ts'"), std::string::npos);
}

TEST(TraceCheck, ValidatesRealSinkOutput)
{
    TraceEventSink sink;
    sink.processName(1, "test");
    sink.threadName(1, 1, "track");
    sink.slice("outer", "span", 1, 1, 0, 1000);
    sink.slice("inner", "span", 1, 1, 100, 200,
               {{"trace", "abc"}});
    std::ostringstream os;
    sink.write(os);

    TraceCheckResult res;
    std::string error;
    EXPECT_TRUE(checkTraceText(os.str(), &res, &error)) << error;
    EXPECT_EQ(res.slices, 2u);
    EXPECT_EQ(res.events, 4u); // 2 metadata + 2 slices
}
