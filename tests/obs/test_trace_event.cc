/**
 * @file
 * Unit tests for the Chrome trace-event JSON emitter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/trace_event.hh"

namespace jitsched {
namespace obs {
namespace {

TEST(TraceEvent, TicksToMicrosIsExact)
{
    // Ticks are nanoseconds; the spec wants microseconds.  The
    // conversion is exact decimal, never a floating-point format.
    EXPECT_EQ(TraceEventSink::ticksToMicros(0), "0");
    EXPECT_EQ(TraceEventSink::ticksToMicros(1), "0.001");
    EXPECT_EQ(TraceEventSink::ticksToMicros(10), "0.01");
    EXPECT_EQ(TraceEventSink::ticksToMicros(100), "0.1");
    EXPECT_EQ(TraceEventSink::ticksToMicros(1000), "1");
    EXPECT_EQ(TraceEventSink::ticksToMicros(1500), "1.5");
    EXPECT_EQ(TraceEventSink::ticksToMicros(2000), "2");
    EXPECT_EQ(TraceEventSink::ticksToMicros(123456789), "123456.789");
    EXPECT_EQ(TraceEventSink::ticksToMicros(-1), "-0.001");
    EXPECT_EQ(TraceEventSink::ticksToMicros(-2500), "-2.5");
}

TEST(TraceEvent, EmptySinkIsStillAValidDocument)
{
    TraceEventSink sink;
    std::ostringstream os;
    sink.write(os);
    EXPECT_EQ(os.str(),
              "{\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n"
              "]}\n");
}

TEST(TraceEvent, SliceAndMetadataSerialization)
{
    TraceEventSink sink;
    sink.threadName(1, 2, "exec core");
    sink.slice("f1@L0", "call", 1, 2, 2000, 3000,
               {{"func", "f1"}, {"level", "0"}});
    ASSERT_EQ(sink.size(), 2u);

    std::ostringstream os;
    sink.write(os);
    EXPECT_EQ(os.str(),
              "{\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n"
              "{\"ph\": \"M\", \"pid\": 1, \"tid\": 2, \"name\": "
              "\"thread_name\", \"args\": {\"name\": \"exec core\"}},\n"
              "{\"ph\": \"X\", \"pid\": 1, \"tid\": 2, \"name\": "
              "\"f1@L0\", \"cat\": \"call\", \"ts\": 2, \"dur\": 3, "
              "\"args\": {\"func\": \"f1\", \"level\": \"0\"}}\n"
              "]}\n");
}

TEST(TraceEvent, StringsAreJsonEscaped)
{
    TraceEventSink sink;
    sink.slice("quote\"back\\slash", "", 1, 1, 0, 1);
    std::ostringstream os;
    sink.write(os);
    EXPECT_NE(os.str().find("quote\\\"back\\\\slash"),
              std::string::npos);
    // Control characters become \u escapes.
    TraceEventSink sink2;
    sink2.slice(std::string("a\x01") + "b", "", 1, 1, 0, 1);
    std::ostringstream os2;
    sink2.write(os2);
    EXPECT_NE(os2.str().find("a\\u0001b"), std::string::npos);
}

TEST(TraceEvent, MetadataEventsCarryNoTimestamps)
{
    TraceEventSink sink;
    sink.processName(1, "jitsched");
    std::ostringstream os;
    sink.write(os);
    EXPECT_EQ(os.str().find("\"ts\""), std::string::npos);
    EXPECT_EQ(os.str().find("\"dur\""), std::string::npos);
}

} // anonymous namespace
} // namespace obs
} // namespace jitsched
