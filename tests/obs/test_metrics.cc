/**
 * @file
 * Unit and concurrency tests for the metrics registry.
 *
 * The concurrency suites are the satellite the TSan job runs: N
 * threads hammer counters and histograms, and the scrape must equal
 * the deterministic totals — striped relaxed atomics lose nothing.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/instruments.hh"
#include "obs/metrics.hh"

namespace jitsched {
namespace obs {
namespace {

TEST(Metrics, CounterStartsAtZeroAndAccumulates)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("test.counter");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name returns the same instrument.
    EXPECT_EQ(&reg.counter("test.counter"), &c);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, GaugeSetAddSetMax)
{
    MetricsRegistry reg;
    Gauge &g = reg.gauge("test.gauge");
    g.set(7);
    EXPECT_EQ(g.value(), 7);
    g.add(-3);
    EXPECT_EQ(g.value(), 4);
    g.setMax(10);
    EXPECT_EQ(g.value(), 10);
    g.setMax(2); // lower values do not stick
    EXPECT_EQ(g.value(), 10);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("test.hist", {10, 100});
    h.observe(10);  // le_10 (inclusive)
    h.observe(11);  // le_100
    h.observe(100); // le_100
    h.observe(101); // le_inf
    const Histogram::Snapshot s = h.snapshot();
    ASSERT_EQ(s.counts.size(), 3u);
    EXPECT_EQ(s.counts[0], 1u);
    EXPECT_EQ(s.counts[1], 2u);
    EXPECT_EQ(s.counts[2], 1u);
    EXPECT_EQ(s.count, 4u);
    EXPECT_EQ(s.sum, 10 + 11 + 100 + 101);
}

TEST(Metrics, SnapshotTextIsSortedAndTyped)
{
    MetricsRegistry reg;
    reg.counter("b.counter").add(2);
    reg.gauge("c.gauge").set(-5);
    reg.histogram("a.hist", {10}).observe(3);
    EXPECT_EQ(reg.snapshotText(),
              "histogram a.hist count 1 sum 3 le_10 1 le_inf 0\n"
              "counter b.counter 2\n"
              "gauge c.gauge -5\n");
}

TEST(Metrics, NamesMayEmbedHyphenatedIdentifiers)
{
    MetricsRegistry reg;
    // Policy names like "lower-bound" ride inside instrument names.
    reg.histogram("service.solve_ns.lower-bound", {10});
    EXPECT_NE(reg.snapshotText().find("service.solve_ns.lower-bound"),
              std::string::npos);
}

TEST(MetricsDeath, KindMismatchPanics)
{
    MetricsRegistry reg;
    reg.counter("test.name");
    EXPECT_DEATH(reg.gauge("test.name"), "registered as a different");
}

TEST(MetricsDeath, HistogramBoundsMismatchPanics)
{
    MetricsRegistry reg;
    reg.histogram("test.hist", {10, 100});
    EXPECT_DEATH(reg.histogram("test.hist", {10, 200}),
                 "different bounds");
}

TEST(MetricsDeath, InvalidNamesPanic)
{
    MetricsRegistry reg;
    EXPECT_DEATH(reg.counter(""), "invalid instrument name");
    EXPECT_DEATH(reg.counter("Upper.Case"), "invalid instrument name");
    EXPECT_DEATH(reg.counter(".leading"), "invalid instrument name");
    EXPECT_DEATH(reg.counter("has space"), "invalid instrument name");
}

TEST(Metrics, RuntimeDisableDropsUpdates)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("test.counter");
    Histogram &h = reg.histogram("test.hist", {10});
    const bool was = MetricsRegistry::setEnabled(false);
    c.add(5);
    h.observe(3);
    MetricsRegistry::setEnabled(was);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.snapshot().count, 0u);
    c.add(5);
    EXPECT_EQ(c.value(), 5u);
}

TEST(Metrics, RegisterStandardInstrumentsIsIdempotent)
{
    // The standard inventory lives in the global registry; the count
    // must not grow on re-registration.
    registerStandardInstruments({"iar", "astar"});
    const std::size_t n = MetricsRegistry::global().size();
    registerStandardInstruments({"iar", "astar"});
    EXPECT_EQ(MetricsRegistry::global().size(), n);
    const std::string snap = MetricsRegistry::global().snapshotText();
    EXPECT_NE(snap.find("counter exec.cache.hits"),
              std::string::npos);
    EXPECT_NE(snap.find("counter solver.astar.nodes_expanded"),
              std::string::npos);
    EXPECT_NE(snap.find("gauge service.queue.depth"),
              std::string::npos);
    EXPECT_NE(snap.find("histogram service.solve_ns.iar"),
              std::string::npos);
}

/**
 * The satellite concurrency check: deterministic totals under a
 * thread hammer (run under TSan by scripts/check.sh --tsan).
 */
TEST(MetricsConcurrency, CountersSumExactlyAcrossThreads)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("test.hammered");
    constexpr std::size_t kThreads = 8;
    constexpr std::uint64_t kAddsPerThread = 99'999; // multiple of 3
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i)
                c.add(i % 3 + 1); // 1, 2, 3, 1, 2, 3, ...
        });
    }
    for (std::thread &t : threads)
        t.join();
    // Each thread adds 1+2+3 per 3 iterations: exactly 2 per add.
    EXPECT_EQ(c.value(), kThreads * kAddsPerThread * 2);
}

TEST(MetricsConcurrency, HistogramTotalsSurviveThreadHammer)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("test.hammered_hist", {10, 100});
    constexpr std::size_t kThreads = 8;
    constexpr std::uint64_t kObsPerThread = 50'000;
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h] {
            for (std::uint64_t i = 0; i < kObsPerThread; ++i)
                h.observe(static_cast<std::int64_t>(i % 200));
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Per thread, i % 200 walks 0..199 exactly kObsPerThread / 200
    // times: 11 values land in le_10 (0..10), 90 in le_100 (11..100),
    // 99 in le_inf (101..199); the sum of 0..199 is 19900.
    const std::uint64_t cycles = kThreads * (kObsPerThread / 200);
    const Histogram::Snapshot s = h.snapshot();
    ASSERT_EQ(s.counts.size(), 3u);
    EXPECT_EQ(s.counts[0], cycles * 11);
    EXPECT_EQ(s.counts[1], cycles * 90);
    EXPECT_EQ(s.counts[2], cycles * 99);
    EXPECT_EQ(s.count, kThreads * kObsPerThread);
    EXPECT_EQ(s.sum, static_cast<std::int64_t>(cycles * 19900));
}

TEST(Metrics, PrometheusExposition)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("prom.requests.total");
    c.add(3);
    Gauge &g = reg.gauge("prom.queue-depth");
    g.set(-2);
    Histogram &h = reg.histogram("prom.wait_ns", {10, 100});
    h.observe(5);    // le 10
    h.observe(50);   // le 100
    h.observe(5000); // +Inf

    // Byte-exact: names gain the jitsched_ prefix with '.'/'-'
    // mapped to '_'; histograms emit *cumulative* le buckets plus
    // +Inf, _sum and _count; map order keeps the output sorted.
    EXPECT_EQ(reg.snapshotProm(),
              "# TYPE jitsched_prom_queue_depth gauge\n"
              "jitsched_prom_queue_depth -2\n"
              "# TYPE jitsched_prom_requests_total counter\n"
              "jitsched_prom_requests_total 3\n"
              "# TYPE jitsched_prom_wait_ns histogram\n"
              "jitsched_prom_wait_ns_bucket{le=\"10\"} 1\n"
              "jitsched_prom_wait_ns_bucket{le=\"100\"} 2\n"
              "jitsched_prom_wait_ns_bucket{le=\"+Inf\"} 3\n"
              "jitsched_prom_wait_ns_sum 5055\n"
              "jitsched_prom_wait_ns_count 3\n");
}

TEST(Metrics, PrometheusExpositionOfAnEmptyRegistryIsEmpty)
{
    MetricsRegistry reg;
    EXPECT_EQ(reg.snapshotProm(), "");
}

TEST(MetricsConcurrency, RegistrationRacesResolveToOneInstrument)
{
    MetricsRegistry reg;
    constexpr std::size_t kThreads = 8;
    std::vector<Counter *> seen(kThreads, nullptr);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, &seen, t] {
            Counter &c = reg.counter("test.raced");
            c.add();
            seen[t] = &c;
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (std::size_t t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[t], seen[0]);
    EXPECT_EQ(reg.counter("test.raced").value(), kThreads);
}

} // anonymous namespace
} // namespace obs
} // namespace jitsched
