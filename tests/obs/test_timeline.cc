/**
 * @file
 * ScheduleTimeline tests: the golden Fig. 1 trace and the property
 * that holds the adapter to the simulator's bubble accounting.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/schedule_timeline.hh"
#include "support/rng.hh"
#include "trace/paper_examples.hh"

namespace jitsched {
namespace obs {
namespace {

/**
 * The paper's Fig. 1 timeline for scheme s3 (f0/f1/f2 at level 0,
 * then f1 recompiled at level 1), byte for byte: compiles at ticks
 * 0-1, 1-2, 2-5, 5-8 on the compile core; the initial bubble while
 * f0 compiles; calls at 1-2, 2-5, 5-8, and 8-10 — make-span 10, the
 * figure's best scheme.
 */
constexpr const char *kFig1S3Golden =
    R"json({"displayTimeUnit": "ns",
"traceEvents": [
{"ph": "M", "pid": 1, "tid": 0, "name": "process_name", "args": {"name": "jitsched: paper-fig1"}},
{"ph": "M", "pid": 1, "tid": 1, "name": "thread_name", "args": {"name": "compile core 0"}},
{"ph": "M", "pid": 1, "tid": 2, "name": "thread_name", "args": {"name": "exec core"}},
{"ph": "X", "pid": 1, "tid": 1, "name": "C0(f0)", "cat": "compile", "ts": 0, "dur": 0.001, "args": {"func": "f0", "level": "0", "event": "0"}},
{"ph": "X", "pid": 1, "tid": 1, "name": "C0(f1)", "cat": "compile", "ts": 0.001, "dur": 0.001, "args": {"func": "f1", "level": "0", "event": "1"}},
{"ph": "X", "pid": 1, "tid": 1, "name": "C0(f2)", "cat": "compile", "ts": 0.002, "dur": 0.003, "args": {"func": "f2", "level": "0", "event": "2"}},
{"ph": "X", "pid": 1, "tid": 1, "name": "C1(f1)", "cat": "compile", "ts": 0.005, "dur": 0.003, "args": {"func": "f1", "level": "1", "event": "3"}},
{"ph": "X", "pid": 1, "tid": 2, "name": "bubble(f0)", "cat": "bubble", "ts": 0, "dur": 0.001, "args": {"func": "f0", "call": "0"}},
{"ph": "X", "pid": 1, "tid": 2, "name": "f0@L0", "cat": "call", "ts": 0.001, "dur": 0.001, "args": {"func": "f0", "level": "0", "call": "0"}},
{"ph": "X", "pid": 1, "tid": 2, "name": "f1@L0", "cat": "call", "ts": 0.002, "dur": 0.003, "args": {"func": "f1", "level": "0", "call": "1"}},
{"ph": "X", "pid": 1, "tid": 2, "name": "f2@L0", "cat": "call", "ts": 0.005, "dur": 0.003, "args": {"func": "f2", "level": "0", "call": "2"}},
{"ph": "X", "pid": 1, "tid": 2, "name": "f1@L1", "cat": "call", "ts": 0.008, "dur": 0.002, "args": {"func": "f1", "level": "1", "call": "3"}}
]}
)json";

TEST(Timeline, Fig1SchemeS3GoldenTrace)
{
    std::ostringstream os;
    writeScheduleTrace(os, figure1Workload(), figureSchemeS3(),
                       SimOptions{});
    EXPECT_EQ(os.str(), kFig1S3Golden);
}

TEST(Timeline, Fig1SchemeS3SliceDecomposition)
{
    const ScheduleTimeline t = buildScheduleTimeline(
        figure1Workload(), figureSchemeS3(), SimOptions{});
    EXPECT_EQ(t.sim.makespan, 10); // the paper's s3 make-span
    EXPECT_EQ(t.compileCores, 1u);

    std::size_t compiles = 0, calls = 0, bubbles = 0;
    for (const TimelineSlice &s : t.slices) {
        switch (s.kind) {
          case TimelineSlice::Kind::Compile:
            ++compiles;
            EXPECT_EQ(s.core, 0u);
            break;
          case TimelineSlice::Kind::Call:
            ++calls;
            break;
          case TimelineSlice::Kind::Bubble:
            ++bubbles;
            break;
        }
    }
    EXPECT_EQ(compiles, 4u); // s3 has four compile events
    EXPECT_EQ(calls, 4u);    // f0 f1 f2 f1
    EXPECT_EQ(bubbles, 1u);  // only the initial wait for f0
    EXPECT_EQ(t.totalBubbleInSlices(), t.sim.totalBubble);
}

TEST(Timeline, SchemesS1AndS2MatchThePaperToo)
{
    const Workload w = figure1Workload();
    const ScheduleTimeline s1 =
        buildScheduleTimeline(w, figureSchemeS1(), SimOptions{});
    const ScheduleTimeline s2 =
        buildScheduleTimeline(w, figureSchemeS2(), SimOptions{});
    EXPECT_EQ(s1.sim.makespan, 11);
    EXPECT_EQ(s2.sim.makespan, 12);
    EXPECT_EQ(s1.totalBubbleInSlices(), s1.sim.totalBubble);
    EXPECT_EQ(s2.totalBubbleInSlices(), s2.sim.totalBubble);
}

/** Random valid (workload, schedule) pair for the property test. */
struct RandomCase
{
    Workload workload;
    Schedule schedule;
};

RandomCase
randomCase(Rng &rng)
{
    const std::size_t num_funcs = 2 + rng.nextBelow(4);
    const std::size_t num_levels = 2 + rng.nextBelow(2);
    std::vector<FunctionProfile> funcs;
    for (std::size_t f = 0; f < num_funcs; ++f) {
        std::vector<LevelCosts> levels;
        Tick exec = 2 + static_cast<Tick>(rng.nextBelow(12));
        Tick compile = 1 + static_cast<Tick>(rng.nextBelow(8));
        for (std::size_t l = 0; l < num_levels; ++l) {
            levels.push_back({compile, exec});
            // Higher levels compile slower and run faster.
            compile += 1 + static_cast<Tick>(rng.nextBelow(6));
            exec = std::max<Tick>(1, exec - 1 -
                                  static_cast<Tick>(rng.nextBelow(3)));
        }
        funcs.emplace_back("f" + std::to_string(f), 1,
                           std::move(levels));
    }

    std::vector<FuncId> calls;
    const std::size_t num_calls = 4 + rng.nextBelow(12);
    for (std::size_t c = 0; c < num_calls; ++c)
        calls.push_back(
            static_cast<FuncId>(rng.nextBelow(num_funcs)));

    RandomCase out;
    out.workload = Workload("random", std::move(funcs), calls);

    // Level-0 compiles for every called function in first-appearance
    // order, then a random subset upgraded to level 1.
    for (const FuncId f : out.workload.firstAppearanceOrder())
        out.schedule.append(f, 0);
    for (const FuncId f : out.workload.firstAppearanceOrder())
        if (rng.nextBool(0.5))
            out.schedule.append(f, 1);
    return out;
}

TEST(Timeline, BubbleSlicesSumToSimulatorBubbleCost)
{
    // The property satellite: across random workloads, schedules,
    // core counts, and jitter, the trace's bubble slices sum to
    // exactly what the simulator booked as bubble cost, and the
    // compile-core replay never diverges (it panics if it does).
    Rng rng(20260806);
    for (int iter = 0; iter < 60; ++iter) {
        const RandomCase rc = randomCase(rng);
        SimOptions opts;
        opts.compileCores = 1 + rng.nextBelow(3);
        if (iter % 3 == 0) {
            opts.execJitterSigma = 0.2;
            opts.jitterSeed = 7 + iter;
        }
        const ScheduleTimeline t =
            buildScheduleTimeline(rc.workload, rc.schedule, opts);
        EXPECT_EQ(t.totalBubbleInSlices(), t.sim.totalBubble)
            << "iteration " << iter;

        // Call + bubble slices tile the exec core: no overlaps, no
        // unexplained gaps, ending at the exec end.
        Tick exec_now = 0;
        for (const TimelineSlice &s : t.slices) {
            if (s.kind == TimelineSlice::Kind::Compile)
                continue;
            EXPECT_EQ(s.start, exec_now) << "iteration " << iter;
            exec_now = s.start + s.dur;
        }
        EXPECT_EQ(exec_now, t.sim.execEnd) << "iteration " << iter;
    }
}

TEST(Timeline, MultiCoreCompileReplayAssignsAllCores)
{
    // Two compile cores: the first two compiles of s3 start at tick
    // 0 on different cores.
    SimOptions opts;
    opts.compileCores = 2;
    const ScheduleTimeline t = buildScheduleTimeline(
        figure1Workload(), figureSchemeS3(), opts);
    std::vector<bool> used(2, false);
    for (const TimelineSlice &s : t.slices)
        if (s.kind == TimelineSlice::Kind::Compile)
            used[s.core] = true;
    EXPECT_TRUE(used[0]);
    EXPECT_TRUE(used[1]);
    EXPECT_EQ(t.totalBubbleInSlices(), t.sim.totalBubble);
}

} // anonymous namespace
} // namespace obs
} // namespace jitsched
