/**
 * @file
 * metricSegment sanitizer tests: hostile labels (empty, all-invalid,
 * UTF-8, edge dots) must land in the registry's [a-z0-9_.-] grammar,
 * and the documented lossiness — two labels mapping to one segment —
 * must alias to the *same* instrument rather than trip the registry's
 * re-registration check.
 */

#include <gtest/gtest.h>

#include "obs/instruments.hh"

using namespace jitsched;
using namespace jitsched::obs;

TEST(MetricSegment, PassesCleanLabelsThrough)
{
    EXPECT_EQ(metricSegment("backend-0"), "backend-0");
    EXPECT_EQ(metricSegment("127.0.0.1:8420"), "127.0.0.1_8420");
    EXPECT_EQ(metricSegment("iar"), "iar");
    EXPECT_EQ(metricSegment("a_b-c.d9"), "a_b-c.d9");
}

TEST(MetricSegment, LowercasesAscii)
{
    EXPECT_EQ(metricSegment("Backend-A"), "backend-a");
    EXPECT_EQ(metricSegment("LOUD"), "loud");
}

TEST(MetricSegment, EmptyLabelBecomesPlaceholder)
{
    EXPECT_EQ(metricSegment(""), "_");
}

TEST(MetricSegment, AllInvalidCharactersCollapseToUnderscores)
{
    EXPECT_EQ(metricSegment("@@@"), "___");
    EXPECT_EQ(metricSegment(" \t\n"), "___");
    EXPECT_EQ(metricSegment("a b/c"), "a_b_c");
}

TEST(MetricSegment, Utf8BytesAreNeutralized)
{
    // Each non-ASCII byte maps to '_' — the output must be plain
    // ASCII whatever the client sent as a backend label.
    const std::string seg = metricSegment("caf\xc3\xa9");
    EXPECT_EQ(seg, "caf__");
    for (const char c : seg)
        EXPECT_TRUE((c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-')
            << static_cast<int>(c);
}

TEST(MetricSegment, EdgeDotsAreReplaced)
{
    // The segment is appended to "cluster.routed_to." — a leading or
    // trailing dot would create an empty dotted component.
    EXPECT_EQ(metricSegment(".host"), "_host");
    EXPECT_EQ(metricSegment("host."), "host_");
    EXPECT_EQ(metricSegment("."), "_");
    EXPECT_EQ(metricSegment("mid.dot"), "mid.dot");
}

TEST(MetricSegment, CollidingLabelsAliasToTheSameInstrument)
{
    // "b@1" and "b#1" both sanitize to "b_1".  The documented
    // contract is aliasing — both labels share one counter — never a
    // fatal type/name clash in the registry.
    ASSERT_EQ(metricSegment("b@1"), metricSegment("b#1"));
    Counter &first = ClusterMetrics::routedToFor("b@1");
    Counter &second = ClusterMetrics::routedToFor("b#1");
    EXPECT_EQ(&first, &second);

    const auto before = first.value();
    second.add();
    EXPECT_EQ(first.value(), before + 1);
}

TEST(MetricSegment, HostileLabelsProduceRegistrableNames)
{
    // End to end: a hostile label must produce a working histogram,
    // not a JITSCHED_FATAL from the registry's name grammar.
    Histogram &h = ClusterMetrics::tryNsFor("Узел-1 (primary)");
    h.observe(1000);
    EXPECT_GE(h.snapshot().count, 1u);
}
