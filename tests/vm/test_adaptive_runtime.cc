/**
 * @file
 * Tests for the Jikes-style adaptive runtime (Sec. 6.2.1).
 */

#include <gtest/gtest.h>

#include "core/lower_bound.hh"
#include "sim/makespan.hh"
#include "trace/synthetic.hh"
#include "vm/adaptive_runtime.hh"
#include "vm/cost_benefit.hh"

namespace jitsched {
namespace {

/** One very hot function plus a cold one. */
Workload
hotColdWorkload()
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back(
        "hot", 100,
        std::vector<LevelCosts>{{1000, 10000}, {100000, 1000}});
    funcs.emplace_back(
        "cold", 100,
        std::vector<LevelCosts>{{1000, 10000}, {100000, 1000}});
    std::vector<FuncId> calls;
    calls.push_back(1);
    for (int i = 0; i < 5000; ++i)
        calls.push_back(0);
    return Workload("hotcold", std::move(funcs), calls);
}

TEST(Adaptive, FirstEncounterCompilesAtLevelZero)
{
    const Workload w = hotColdWorkload();
    AdaptiveConfig cfg;
    cfg.samplePeriod = 0; // no sampling: only first encounters
    const RuntimeResult res =
        runAdaptive(w, buildOracleEstimates(w), cfg);
    ASSERT_EQ(res.inducedSchedule.size(), 2u);
    EXPECT_EQ(res.inducedSchedule[0].func, 1u);
    EXPECT_EQ(res.inducedSchedule[0].level, 0);
    EXPECT_EQ(res.inducedSchedule[1].func, 0u);
    EXPECT_EQ(res.inducedSchedule[1].level, 0);
    EXPECT_EQ(res.recompiles, 0u);
    EXPECT_EQ(res.samples, 0u);
}

TEST(Adaptive, HotFunctionGetsRecompiled)
{
    const Workload w = hotColdWorkload();
    AdaptiveConfig cfg;
    cfg.samplePeriod = 20000; // one sample every ~2 hot calls
    const RuntimeResult res =
        runAdaptive(w, buildOracleEstimates(w), cfg);
    EXPECT_GE(res.recompiles, 1u);
    // The recompile targets the hot function at level 1.
    bool hot_upgraded = false;
    for (const CompileEvent &ev : res.inducedSchedule.events())
        hot_upgraded |= ev.func == 0 && ev.level == 1;
    EXPECT_TRUE(hot_upgraded);
    // And the make-span beats never recompiling.
    AdaptiveConfig no_sampling;
    no_sampling.samplePeriod = 0;
    const RuntimeResult base =
        runAdaptive(w, buildOracleEstimates(w), no_sampling);
    EXPECT_LT(res.sim.makespan, base.sim.makespan);
}

TEST(Adaptive, ColdFunctionNeverRecompiled)
{
    const Workload w = hotColdWorkload();
    AdaptiveConfig cfg;
    cfg.samplePeriod = 20000;
    const RuntimeResult res =
        runAdaptive(w, buildOracleEstimates(w), cfg);
    for (const CompileEvent &ev : res.inducedSchedule.events()) {
        if (ev.func == 1) {
            EXPECT_EQ(ev.level, 0);
        }
    }
}

TEST(Adaptive, InducedScheduleIsValid)
{
    SyntheticConfig scfg;
    scfg.numFunctions = 150;
    scfg.numCalls = 30000;
    scfg.seed = 61;
    const Workload w = generateSynthetic(scfg);
    AdaptiveConfig cfg;
    cfg.samplePeriod = defaultSamplePeriod(w);
    const RuntimeResult res =
        runAdaptive(w, buildDefaultEstimates(w), cfg);
    std::string err;
    EXPECT_TRUE(res.inducedSchedule.validate(w, &err)) << err;
}

TEST(Adaptive, MakespanAtLeastLowerBound)
{
    SyntheticConfig scfg;
    scfg.numFunctions = 100;
    scfg.numCalls = 20000;
    scfg.seed = 63;
    const Workload w = generateSynthetic(scfg);
    AdaptiveConfig cfg;
    cfg.samplePeriod = defaultSamplePeriod(w);
    const RuntimeResult res =
        runAdaptive(w, buildOracleEstimates(w), cfg);
    EXPECT_GE(res.sim.makespan, lowerBoundAllLevels(w));
    EXPECT_EQ(res.sim.execEnd,
              res.sim.totalExec + res.sim.totalBubble);
}

TEST(Adaptive, FirstCallAlwaysBubbles)
{
    // The first call must wait for its level-0 compile: with a
    // single compile core the first bubble is unavoidable.
    const Workload w = hotColdWorkload();
    AdaptiveConfig cfg;
    cfg.samplePeriod = 0;
    const RuntimeResult res =
        runAdaptive(w, buildOracleEstimates(w), cfg);
    EXPECT_GE(res.sim.bubbleCount, 1u);
    EXPECT_GE(res.sim.totalBubble, 1000);
}

TEST(Adaptive, SamplingCountsSamples)
{
    const Workload w = hotColdWorkload();
    AdaptiveConfig cfg;
    cfg.samplePeriod = 100000;
    const RuntimeResult res =
        runAdaptive(w, buildOracleEstimates(w), cfg);
    // Total execution is ~50M ticks at level 0 (less once the hot
    // function is optimized); samples land every 100K ticks.
    EXPECT_GT(res.samples, 50u);
}

TEST(Adaptive, MoreCompileCoresNeverHurt)
{
    SyntheticConfig scfg;
    scfg.numFunctions = 120;
    scfg.numCalls = 25000;
    scfg.seed = 67;
    const Workload w = generateSynthetic(scfg);
    const TimeEstimates est = buildDefaultEstimates(w);

    AdaptiveConfig one;
    one.samplePeriod = defaultSamplePeriod(w);
    AdaptiveConfig four = one;
    four.compileCores = 4;
    // Not a theorem (policies see different timings), but holds on
    // this workload and guards gross regressions.
    EXPECT_LE(runAdaptive(w, est, four).sim.makespan,
              runAdaptive(w, est, one).sim.makespan * 101 / 100);
}

TEST(Adaptive, DefaultSamplePeriodScalesWithWorkload)
{
    SyntheticConfig scfg;
    scfg.numFunctions = 50;
    scfg.numCalls = 5000;
    scfg.seed = 69;
    scfg.targetLevel0ExecTime = 60 * ticksPerMs;
    const Workload small = generateSynthetic(scfg);
    scfg.targetLevel0ExecTime = 600 * ticksPerMs;
    const Workload big = generateSynthetic(scfg);
    EXPECT_GT(defaultSamplePeriod(big), defaultSamplePeriod(small));
}

TEST(AdaptiveDeath, EstimateTableMismatch)
{
    const Workload w = hotColdWorkload();
    TimeEstimates est = buildOracleEstimates(w);
    est.perFunc.pop_back();
    EXPECT_DEATH(runAdaptive(w, est, AdaptiveConfig{}),
                 "estimate table");
}

} // anonymous namespace
} // namespace jitsched
