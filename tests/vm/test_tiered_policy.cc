/**
 * @file
 * Tests for the HotSpot-style tiered (counter-threshold) policy.
 */

#include <gtest/gtest.h>

#include "core/lower_bound.hh"
#include "trace/synthetic.hh"
#include "vm/tiered_policy.hh"

namespace jitsched {
namespace {

Workload
oneHotFunction(std::size_t calls)
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("hot", 1,
                       std::vector<LevelCosts>{
                           {10, 100}, {50, 40}, {200, 20}, {800, 10}});
    return Workload("w", std::move(funcs),
                    std::vector<FuncId>(calls, 0));
}

TEST(Tiered, PromotesThroughTiers)
{
    const Workload w = oneHotFunction(20000);
    TieredConfig cfg;
    cfg.promoteAt = {100, 1000, 10000};
    const RuntimeResult res = runTiered(w, cfg);
    // All four levels get compiled: 0 at first call, then promotions.
    ASSERT_EQ(res.inducedSchedule.size(), 4u);
    EXPECT_EQ(res.inducedSchedule[0].level, 0);
    EXPECT_EQ(res.inducedSchedule[1].level, 1);
    EXPECT_EQ(res.inducedSchedule[2].level, 2);
    EXPECT_EQ(res.inducedSchedule[3].level, 3);
    EXPECT_EQ(res.recompiles, 3u);
}

TEST(Tiered, ColdFunctionStaysAtBaseline)
{
    const Workload w = oneHotFunction(50);
    TieredConfig cfg;
    cfg.promoteAt = {100, 1000, 10000};
    const RuntimeResult res = runTiered(w, cfg);
    EXPECT_EQ(res.inducedSchedule.size(), 1u);
    EXPECT_EQ(res.recompiles, 0u);
}

TEST(Tiered, LukewarmFunctionStopsMidTier)
{
    const Workload w = oneHotFunction(500);
    TieredConfig cfg;
    cfg.promoteAt = {100, 1000, 10000};
    const RuntimeResult res = runTiered(w, cfg);
    ASSERT_EQ(res.inducedSchedule.size(), 2u);
    EXPECT_EQ(res.inducedSchedule[1].level, 1);
}

TEST(Tiered, ClampsToAvailableLevels)
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("two-level", 1,
                       std::vector<LevelCosts>{{10, 100}, {50, 40}});
    const Workload w("w", std::move(funcs),
                     std::vector<FuncId>(20000, 0));
    TieredConfig cfg;
    cfg.promoteAt = {100, 1000, 10000};
    const RuntimeResult res = runTiered(w, cfg);
    for (const CompileEvent &ev : res.inducedSchedule.events())
        EXPECT_LE(ev.level, 1);
    EXPECT_TRUE(res.inducedSchedule.validate(w));
}

TEST(Tiered, ValidOnSyntheticWorkload)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 120;
    cfg.numCalls = 24000;
    cfg.seed = 81;
    const Workload w = generateSynthetic(cfg);
    const RuntimeResult res = runTiered(w);
    std::string err;
    EXPECT_TRUE(res.inducedSchedule.validate(w, &err)) << err;
    EXPECT_GE(res.sim.makespan, lowerBoundAllLevels(w));
}

TEST(Tiered, PriorityDisciplineHelpsOrTies)
{
    SyntheticConfig scfg;
    scfg.numFunctions = 200;
    scfg.numCalls = 40000;
    scfg.seed = 83;
    const Workload w = generateSynthetic(scfg);

    TieredConfig fifo;
    TieredConfig prio;
    prio.discipline = QueueDiscipline::FirstCompileFirst;
    // First-compile priority removes first-call waits behind long
    // promotions; allow a sliver of tolerance for pathological
    // interleavings.
    EXPECT_LE(runTiered(w, prio).sim.makespan,
              runTiered(w, fifo).sim.makespan * 101 / 100);
}

TEST(TieredDeath, ThresholdsMustIncrease)
{
    const Workload w = oneHotFunction(10);
    TieredConfig cfg;
    cfg.promoteAt = {100, 100};
    EXPECT_EXIT(runTiered(w, cfg), ::testing::ExitedWithCode(1),
                "strictly increase");
}

} // anonymous namespace
} // namespace jitsched
