/**
 * @file
 * Tests for the lazy-dispatch compile manager and its queue
 * disciplines (the Sec. 7 first-compile-priority insight).
 */

#include <gtest/gtest.h>

#include "sim/compile_queue.hh"
#include "support/rng.hh"
#include "vm/compile_manager.hh"

namespace jitsched {
namespace {

TEST(CompileManager, FifoMatchesEagerQueue)
{
    // The lazy FIFO dispatch must reproduce CompileQueue exactly.
    Rng rng(3);
    for (const std::size_t cores : {1u, 2u, 4u}) {
        CompileManager mgr(8, cores, QueueDiscipline::Fifo);
        CompileQueue q(cores);
        Tick arrival = 0;
        for (int i = 0; i < 200; ++i) {
            arrival += static_cast<Tick>(rng.nextBelow(50));
            const auto f = static_cast<FuncId>(rng.nextBelow(8));
            const Tick dur =
                static_cast<Tick>(1 + rng.nextBelow(100));
            mgr.submit(f, 0, dur, arrival, true);
            q.submit(arrival, dur);
        }
        EXPECT_EQ(mgr.drain(), q.allDone());
        EXPECT_EQ(mgr.busyTime(), q.busyTime());
    }
}

TEST(CompileManager, FirstReadyDispatchesForward)
{
    CompileManager mgr(3, 1, QueueDiscipline::Fifo);
    mgr.submit(0, 0, 10, 0, true);
    mgr.submit(1, 0, 20, 0, true);
    mgr.submit(2, 0, 5, 0, true);
    EXPECT_EQ(mgr.firstReady(2), 35);
    EXPECT_EQ(mgr.firstReady(0), 10);
    EXPECT_EQ(mgr.firstReady(1), 30);
}

TEST(CompileManager, VersionAtPicksDeepestCompleted)
{
    CompileManager mgr(1, 1, QueueDiscipline::Fifo);
    mgr.submit(0, 0, 10, 0, true);   // done at 10
    mgr.submit(0, 2, 30, 0, false);  // done at 40
    EXPECT_EQ(mgr.versionAt(0, 5), -1);
    EXPECT_EQ(mgr.versionAt(0, 10), 0);
    EXPECT_EQ(mgr.versionAt(0, 39), 0);
    EXPECT_EQ(mgr.versionAt(0, 40), 2);
}

TEST(CompileManager, PriorityLetsFirstCompilesOvertake)
{
    // A long recompile is pending behind the current job when a
    // first compile arrives: under FIFO the first compile waits for
    // the recompile; under FirstCompileFirst it overtakes it.
    auto run = [](QueueDiscipline d) {
        CompileManager mgr(3, 1, d);
        mgr.submit(0, 0, 10, 0, true);    // busy [0,10)
        mgr.submit(1, 1, 100, 1, false);  // recompile, pending
        mgr.submit(2, 0, 5, 2, true);     // first compile of f2
        return mgr.firstReady(2);
    };
    EXPECT_EQ(run(QueueDiscipline::Fifo), 115);
    EXPECT_EQ(run(QueueDiscipline::FirstCompileFirst), 15);
}

TEST(CompileManager, StartedJobsAreNotPreempted)
{
    // The recompile has already started when the first compile
    // arrives: it must run to completion.
    CompileManager mgr(2, 1, QueueDiscipline::FirstCompileFirst);
    mgr.submit(0, 1, 100, 0, false);
    // Force dispatch of the recompile by querying time 1.
    EXPECT_EQ(mgr.versionAt(0, 1), -1);
    mgr.submit(1, 0, 5, 10, true);
    EXPECT_EQ(mgr.firstReady(1), 105);
}

TEST(CompileManager, PriorityKeepsArrivalOrderWithinClass)
{
    CompileManager mgr(3, 1, QueueDiscipline::FirstCompileFirst);
    mgr.submit(0, 0, 10, 0, true);
    mgr.submit(1, 0, 10, 1, true);
    mgr.submit(2, 0, 10, 2, true);
    EXPECT_EQ(mgr.firstReady(0), 10);
    EXPECT_EQ(mgr.firstReady(1), 20);
    EXPECT_EQ(mgr.firstReady(2), 30);
}

TEST(CompileManager, DispatchOrderRecordsWhatRan)
{
    CompileManager mgr(3, 1, QueueDiscipline::FirstCompileFirst);
    mgr.submit(0, 0, 10, 0, true);
    mgr.submit(1, 1, 50, 1, false);
    mgr.submit(2, 0, 5, 2, true);
    mgr.drain();
    const auto &order = mgr.dispatchOrder();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0].first, 0u);
    EXPECT_EQ(order[1].first, 2u); // overtook the recompile
    EXPECT_EQ(order[2].first, 1u);
}

TEST(CompileManager, IdleGapsWhenNothingHasArrived)
{
    CompileManager mgr(2, 1, QueueDiscipline::Fifo);
    mgr.submit(0, 0, 10, 0, true);
    mgr.submit(1, 0, 10, 100, true);
    EXPECT_EQ(mgr.drain(), 110);
    EXPECT_EQ(mgr.busyTime(), 20);
}

TEST(CompileManager, MultiCorePriorityDispatch)
{
    CompileManager mgr(4, 2, QueueDiscipline::FirstCompileFirst);
    mgr.submit(0, 0, 100, 0, true); // core A [0,100)
    mgr.submit(1, 1, 100, 0, false); // core B [0,100)
    mgr.submit(2, 1, 50, 1, false);  // pending recompile
    mgr.submit(3, 0, 5, 2, true);    // first compile overtakes
    EXPECT_EQ(mgr.firstReady(3), 105);
    mgr.drain();
    EXPECT_EQ(mgr.versionAt(2, 200), 1);
}

TEST(CompileManagerDeath, Validation)
{
    EXPECT_DEATH(CompileManager(1, 0, QueueDiscipline::Fifo),
                 "at least one core");
    CompileManager mgr(2, 1, QueueDiscipline::Fifo);
    EXPECT_DEATH(mgr.submit(5, 0, 1, 0, true), "bad function");
    mgr.submit(0, 0, 1, 10, true);
    EXPECT_DEATH(mgr.submit(0, 1, 1, 5, false), "non-decreasing");
    EXPECT_DEATH(mgr.firstReady(1), "never requested");
}

} // anonymous namespace
} // namespace jitsched
