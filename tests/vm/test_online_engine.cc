/**
 * @file
 * Tests for the online discrete-event engine, via a scripted policy.
 */

#include <gtest/gtest.h>

#include <vector>

#include "vm/online_engine.hh"

namespace jitsched {
namespace {

/** Policy scripted per test: requests a fixed (func, level, at-nth). */
struct ScriptedPolicy
{
    struct Rule
    {
        FuncId func;
        std::uint64_t nth;
        Level level;
    };
    std::vector<Rule> rules;
    std::vector<Tick> sample_times;

    Level
    firstLevel(FuncId) const
    {
        return 0;
    }

    void
    onInvocation(FuncId f, std::uint64_t nth, Tick now,
                 Requester &req)
    {
        for (const Rule &r : rules) {
            if (r.func == f && r.nth == nth)
                req.request(f, r.level, now);
        }
    }

    void
    onSample(FuncId, Tick now, Requester &)
    {
        sample_times.push_back(now);
    }
};

Workload
simpleWorkload()
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back(
        "f", 1,
        std::vector<LevelCosts>{{10, 100}, {20, 50}, {40, 25}});
    funcs.emplace_back(
        "g", 1,
        std::vector<LevelCosts>{{10, 100}, {20, 50}, {40, 25}});
    return Workload("w", std::move(funcs), {0, 1, 0, 1, 0, 1});
}

TEST(OnlineEngine, DowngradeRequestsIgnored)
{
    const Workload w = simpleWorkload();
    ScriptedPolicy policy;
    policy.rules = {{0, 2, 2}, {0, 3, 1}}; // level 1 after level 2
    OnlineConfig cfg;
    const RuntimeResult res = runOnline(w, cfg, policy);
    // The level-1 request must have been dropped.
    for (const CompileEvent &ev : res.inducedSchedule.events()) {
        if (ev.func == 0) {
            EXPECT_NE(ev.level, 1);
        }
    }
    EXPECT_TRUE(res.inducedSchedule.validate(w));
}

TEST(OnlineEngine, SameLevelRequestIgnored)
{
    const Workload w = simpleWorkload();
    ScriptedPolicy policy;
    policy.rules = {{0, 2, 1}, {0, 3, 1}};
    const RuntimeResult res = runOnline(w, OnlineConfig{}, policy);
    std::size_t f0_events = 0;
    for (const CompileEvent &ev : res.inducedSchedule.events())
        f0_events += ev.func == 0 ? 1 : 0;
    EXPECT_EQ(f0_events, 2u); // level 0 + one level 1
}

TEST(OnlineEngine, RecompileCountExcludesFirstEncounters)
{
    const Workload w = simpleWorkload();
    ScriptedPolicy policy;
    policy.rules = {{0, 2, 1}, {1, 2, 2}};
    const RuntimeResult res = runOnline(w, OnlineConfig{}, policy);
    EXPECT_EQ(res.recompiles, 2u);
    EXPECT_EQ(res.inducedSchedule.size(), 4u);
}

TEST(OnlineEngine, BubblesWhenQueueIsBusy)
{
    // g's first compile sits behind f's in the queue, so g's first
    // call waits.
    const Workload w = simpleWorkload();
    ScriptedPolicy policy;
    const RuntimeResult res = runOnline(w, OnlineConfig{}, policy);
    // f compiles [0,10), f runs [10,110); g requested at 110 -> g
    // compiles [110,120): bubble of 10 for g's call.
    EXPECT_GE(res.sim.bubbleCount, 2u); // f's first call also waits
    EXPECT_GE(res.sim.totalBubble, 20);
}

TEST(OnlineEngine, SamplesOnlyDuringExecution)
{
    const Workload w = simpleWorkload();
    ScriptedPolicy policy;
    OnlineConfig cfg;
    cfg.samplePeriod = 50;
    const RuntimeResult res = runOnline(w, cfg, policy);
    EXPECT_EQ(res.samples, policy.sample_times.size());
    EXPECT_GT(res.samples, 0u);
    // Sample times strictly increase.
    for (std::size_t i = 1; i < policy.sample_times.size(); ++i)
        EXPECT_GT(policy.sample_times[i],
                  policy.sample_times[i - 1]);
    // No sample during the initial bubble [0,10).
    EXPECT_GE(policy.sample_times.front(), 10);
}

TEST(OnlineEngine, SamplingDisabledWithZeroPeriod)
{
    const Workload w = simpleWorkload();
    ScriptedPolicy policy;
    OnlineConfig cfg;
    cfg.samplePeriod = 0;
    const RuntimeResult res = runOnline(w, cfg, policy);
    EXPECT_EQ(res.samples, 0u);
}

TEST(OnlineEngine, MultipleCompileCoresOverlap)
{
    const Workload w = simpleWorkload();
    ScriptedPolicy p1, p2;
    OnlineConfig one;
    OnlineConfig two;
    two.compileCores = 2;
    const Tick m1 = runOnline(w, one, p1).sim.makespan;
    const Tick m2 = runOnline(w, two, p2).sim.makespan;
    EXPECT_LE(m2, m1);
}

TEST(OnlineEngine, UpgradedVersionUsedOnceReady)
{
    const Workload w = simpleWorkload();
    ScriptedPolicy policy;
    policy.rules = {{0, 1, 2}}; // upgrade f immediately
    const RuntimeResult res = runOnline(w, OnlineConfig{}, policy);
    // f's later calls run at level 2.
    EXPECT_GT(res.sim.callsAtLevel[2], 0u);
}

} // anonymous namespace
} // namespace jitsched
