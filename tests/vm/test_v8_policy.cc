/**
 * @file
 * Tests for the V8 scheduling scheme (Sec. 6.2.4).
 */

#include <gtest/gtest.h>

#include "core/lower_bound.hh"
#include "trace/synthetic.hh"
#include "vm/v8_policy.hh"

namespace jitsched {
namespace {

Workload
twoLevelWorkload(std::uint64_t seed = 71)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 80;
    cfg.numCalls = 16000;
    cfg.numLevels = 2;
    cfg.seed = seed;
    return generateSynthetic(cfg);
}

TEST(V8, FirstLowSecondHigh)
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("f", 1,
                       std::vector<LevelCosts>{{10, 100}, {50, 20}});
    const Workload w("w", std::move(funcs), {0, 0, 0});
    const RuntimeResult res = runV8(w);
    ASSERT_EQ(res.inducedSchedule.size(), 2u);
    EXPECT_EQ(res.inducedSchedule[0].level, 0);
    EXPECT_EQ(res.inducedSchedule[1].level, 1);
    EXPECT_EQ(res.recompiles, 1u);
}

TEST(V8, SingleCallFunctionsNeverRecompiled)
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("once", 1,
                       std::vector<LevelCosts>{{10, 100}, {50, 20}});
    funcs.emplace_back("twice", 1,
                       std::vector<LevelCosts>{{10, 100}, {50, 20}});
    const Workload w("w", std::move(funcs), {0, 1, 1});
    const RuntimeResult res = runV8(w);
    for (const CompileEvent &ev : res.inducedSchedule.events()) {
        if (ev.func == 0) {
            EXPECT_EQ(ev.level, 0);
        }
    }
    EXPECT_EQ(res.recompiles, 1u);
}

TEST(V8, RecompileTimingFollowsSecondInvocation)
{
    // The high compile is requested when the second call arrives,
    // not at the first: with a long gap between calls the request
    // arrives late.
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("f", 1,
                       std::vector<LevelCosts>{{10, 100}, {50, 20}});
    funcs.emplace_back("filler", 1,
                       std::vector<LevelCosts>{{5, 1000}, {5, 1000}});
    const Workload w("w", std::move(funcs), {0, 1, 0, 0});
    const RuntimeResult res = runV8(w);
    // f compiles [0,10), runs [10,110).  Filler compiles [110,115),
    // runs [115,1115).  The second f call requests the high compile
    // at 1115 ([1115,1165)) but itself still runs the low version
    // [1115,1215); the third call uses the high version [1215,1235).
    EXPECT_EQ(res.sim.makespan, 1235);
}

TEST(V8, CustomTriggerInvocation)
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("f", 1,
                       std::vector<LevelCosts>{{10, 100}, {50, 20}});
    const Workload w("w", std::move(funcs), {0, 0, 0, 0});
    V8Config cfg;
    cfg.recompileOnInvocation = 4;
    const RuntimeResult res = runV8(w, cfg);
    ASSERT_EQ(res.inducedSchedule.size(), 2u);
    // Requested at the 4th call: too late to help any call.
    EXPECT_EQ(res.sim.callsAtLevel[1], 0u);
}

TEST(V8, InducedScheduleValidOnSyntheticWorkload)
{
    const Workload w = twoLevelWorkload();
    const RuntimeResult res = runV8(w);
    std::string err;
    EXPECT_TRUE(res.inducedSchedule.validate(w, &err)) << err;
    EXPECT_GE(res.sim.makespan, lowerBoundAllLevels(w));
}

TEST(V8, SingleLevelWorkloadHasNoRecompiles)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 30;
    cfg.numCalls = 3000;
    cfg.numLevels = 1;
    cfg.seed = 73;
    const Workload w = generateSynthetic(cfg);
    const RuntimeResult res = runV8(w);
    EXPECT_EQ(res.recompiles, 0u);
    EXPECT_EQ(res.inducedSchedule.size(), w.numCalledFunctions());
}

TEST(V8, OptimizesRepeatedlyCalledFunctions)
{
    // Most calls of a hot function run at the high level.
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("hot", 1,
                       std::vector<LevelCosts>{{10, 100}, {50, 20}});
    const Workload w("w", std::move(funcs),
                     std::vector<FuncId>(1000, 0));
    const RuntimeResult res = runV8(w);
    EXPECT_GT(res.sim.callsAtLevel[1], 990u);
}

TEST(V8, WorksOnRestrictedDacapoStyleWorkload)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 120;
    cfg.numCalls = 24000;
    cfg.seed = 79;
    const Workload w4 = generateSynthetic(cfg);
    const Workload w2 = w4.restrictLevels(2);
    const RuntimeResult res = runV8(w2);
    EXPECT_TRUE(res.inducedSchedule.validate(w2));
    // Every level index must be < 2.
    for (std::size_t j = 0; j < res.sim.callsAtLevel.size(); ++j) {
        if (j >= 2) {
            EXPECT_EQ(res.sim.callsAtLevel[j], 0u);
        }
    }
}

} // anonymous namespace
} // namespace jitsched
