/**
 * @file
 * Tests for the cost-benefit models (default estimator and oracle).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "trace/synthetic.hh"
#include "vm/cost_benefit.hh"

namespace jitsched {
namespace {

Workload
sample(std::uint64_t seed = 51)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 80;
    cfg.numCalls = 16000;
    cfg.seed = seed;
    return generateSynthetic(cfg);
}

TEST(CostBenefit, OracleMirrorsTruth)
{
    const Workload w = sample();
    const TimeEstimates est = buildOracleEstimates(w);
    for (std::size_t f = 0; f < w.numFunctions(); ++f) {
        const auto &prof = w.function(static_cast<FuncId>(f));
        for (std::size_t j = 0; j < prof.numLevels(); ++j) {
            EXPECT_EQ(est.at(static_cast<FuncId>(f),
                             static_cast<Level>(j))
                          .compile,
                      prof.compileTime(static_cast<Level>(j)));
            EXPECT_EQ(est.at(static_cast<FuncId>(f),
                             static_cast<Level>(j))
                          .exec,
                      prof.execTime(static_cast<Level>(j)));
        }
    }
}

TEST(CostBenefit, DefaultEstimatesKeepInvariants)
{
    const Workload w = sample();
    CostBenefitConfig cfg;
    cfg.noiseSigma = 0.5; // stress the clamping
    const TimeEstimates est = buildEstimates(w, cfg);
    for (const auto &levels : est.perFunc) {
        ASSERT_FALSE(levels.empty());
        EXPECT_TRUE(FunctionProfile::levelsMonotonic(levels));
    }
}

TEST(CostBenefit, DefaultKnowsLevel0Execution)
{
    const Workload w = sample();
    const TimeEstimates est = buildDefaultEstimates(w);
    // The sampler observes level-0 behaviour, so e0 is exact.
    for (std::size_t f = 0; f < w.numFunctions(); ++f)
        EXPECT_EQ(est.at(static_cast<FuncId>(f), 0).exec,
                  w.function(static_cast<FuncId>(f)).execTime(0));
}

TEST(CostBenefit, FittedRatesTrackTrueMassTimesBias)
{
    const Workload w = sample();
    CostBenefitConfig cfg;
    cfg.compileRateBias = 1.0;
    const TimeEstimates est = buildEstimates(w, cfg);

    // Aggregate estimated vs true compile mass at each level: the
    // fit matches total mass per level (rate * total size).
    for (std::size_t j = 0; j < w.maxLevels(); ++j) {
        double true_mass = 0.0, est_mass = 0.0;
        for (std::size_t f = 0; f < w.numFunctions(); ++f) {
            true_mass += static_cast<double>(
                w.function(static_cast<FuncId>(f))
                    .compileTime(static_cast<Level>(j)));
            est_mass += static_cast<double>(
                est.at(static_cast<FuncId>(f),
                       static_cast<Level>(j))
                    .compile);
        }
        EXPECT_NEAR(est_mass / true_mass, 1.0, 0.02);
    }
}

TEST(CostBenefit, RateBiasScalesCompileEstimates)
{
    const Workload w = sample();
    CostBenefitConfig unbiased;
    unbiased.compileRateBias = 1.0;
    CostBenefitConfig biased;
    biased.compileRateBias = 2.0;
    const TimeEstimates a = buildEstimates(w, unbiased);
    const TimeEstimates b = buildEstimates(w, biased);
    EXPECT_NEAR(static_cast<double>(b.at(0, 3).compile) /
                    static_cast<double>(a.at(0, 3).compile),
                2.0, 0.01);
}

TEST(CostBenefit, NoiseIsDeterministicBySeed)
{
    const Workload w = sample();
    CostBenefitConfig cfg;
    cfg.noiseSigma = 0.3;
    const TimeEstimates a = buildEstimates(w, cfg);
    const TimeEstimates b = buildEstimates(w, cfg);
    EXPECT_EQ(a.perFunc, b.perFunc);

    cfg.seed = 1234;
    const TimeEstimates c = buildEstimates(w, cfg);
    EXPECT_NE(a.perFunc, c.perFunc);
}

TEST(CostBenefit, ModelCallCountsDiscount)
{
    const Workload w = sample();
    CostBenefitConfig cfg;
    cfg.hotnessDiscount = 0.5;
    const auto counts = modelCallCounts(w, cfg);
    EXPECT_NEAR(counts[0],
                0.5 * static_cast<double>(w.callCount(0)), 1e-9);

    cfg.kind = ModelKind::Oracle;
    const auto oracle_counts = modelCallCounts(w, cfg);
    EXPECT_NEAR(oracle_counts[0],
                static_cast<double>(w.callCount(0)), 1e-9);
}

TEST(CostBenefit, ModelCandidateLevelsOracleMatchesDirect)
{
    const Workload w = sample();
    CostBenefitConfig cfg;
    cfg.kind = ModelKind::Oracle;
    EXPECT_EQ(modelCandidateLevels(w, cfg),
              oracleCandidateLevels(w));
}

TEST(CostBenefit, ConservativeBiasChoosesShallowerLevels)
{
    const Workload w = sample();
    CostBenefitConfig cheap;
    cheap.compileRateBias = 0.2;
    CostBenefitConfig pricey;
    pricey.compileRateBias = 3.0;
    const auto a = modelCandidateLevels(w, cheap);
    const auto b = modelCandidateLevels(w, pricey);
    std::size_t a_depth = 0, b_depth = 0;
    for (std::size_t f = 0; f < w.numFunctions(); ++f) {
        a_depth += a[f].high;
        b_depth += b[f].high;
    }
    EXPECT_GT(a_depth, b_depth);
}

TEST(CostBenefitDeath, TooFewConfiguredLevels)
{
    const Workload w = sample();
    CostBenefitConfig cfg;
    cfg.compileNsPerByte = {100.0}; // workload has 4 levels
    EXPECT_EXIT(buildEstimates(w, cfg),
                ::testing::ExitedWithCode(1), "fewer");
}

} // anonymous namespace
} // namespace jitsched
