/**
 * @file
 * Unit tests for FunctionProfile and its invariants.
 */

#include <gtest/gtest.h>

#include "trace/function_profile.hh"

namespace jitsched {
namespace {

FunctionProfile
threeLevels()
{
    return FunctionProfile("f", 100,
                           {{10, 100}, {50, 40}, {200, 25}});
}

TEST(FunctionProfile, Accessors)
{
    const FunctionProfile p = threeLevels();
    EXPECT_EQ(p.name(), "f");
    EXPECT_EQ(p.size(), 100u);
    EXPECT_EQ(p.numLevels(), 3u);
    EXPECT_EQ(p.compileTime(0), 10);
    EXPECT_EQ(p.execTime(0), 100);
    EXPECT_EQ(p.compileTime(2), 200);
    EXPECT_EQ(p.execTime(2), 25);
    EXPECT_EQ(p.highestLevel(), 2);
}

TEST(FunctionProfile, EqualLevelsAllowed)
{
    // Monotonicity is non-strict: equal times across levels are fine.
    const FunctionProfile p("g", 1, {{5, 7}, {5, 7}});
    EXPECT_EQ(p.numLevels(), 2u);
}

TEST(FunctionProfile, MonotonicChecker)
{
    EXPECT_TRUE(FunctionProfile::levelsMonotonic(
        {{1, 10}, {2, 9}, {3, 8}}));
    EXPECT_TRUE(FunctionProfile::levelsMonotonic({{1, 1}}));
    // Compile time decreases: invalid.
    EXPECT_FALSE(FunctionProfile::levelsMonotonic({{5, 10}, {4, 9}}));
    // Execution time increases: invalid.
    EXPECT_FALSE(FunctionProfile::levelsMonotonic({{1, 5}, {2, 6}}));
    // Negative times: invalid.
    EXPECT_FALSE(FunctionProfile::levelsMonotonic({{-1, 5}}));
    EXPECT_FALSE(FunctionProfile::levelsMonotonic({{1, -5}}));
}

TEST(FunctionProfileDeath, RejectsNonMonotonic)
{
    EXPECT_DEATH(FunctionProfile("bad", 1, {{5, 10}, {4, 20}}),
                 "monotonicity");
}

TEST(FunctionProfileDeath, RejectsEmptyLevels)
{
    EXPECT_DEATH(FunctionProfile("bad", 1, {}), "no levels");
}

TEST(FunctionProfileDeath, LevelOutOfRange)
{
    const FunctionProfile p = threeLevels();
    EXPECT_DEATH(p.level(3), "out of range");
}

TEST(FunctionProfile, CostEffectiveLevelSingleCall)
{
    // One call: level0 10+100=110, level1 50+40=90, level2 200+25=225.
    EXPECT_EQ(threeLevels().mostCostEffectiveLevel(1), 1);
}

TEST(FunctionProfile, CostEffectiveLevelHotFunction)
{
    // Many calls: execution dominates -> highest level.
    EXPECT_EQ(threeLevels().mostCostEffectiveLevel(100000), 2);
}

TEST(FunctionProfile, CostEffectiveLevelMiddle)
{
    // n = 3: level 0 -> 10+300=310, level 1 -> 50+120=170,
    // level 2 -> 200+75=275.  Level 1 wins.
    EXPECT_EQ(threeLevels().mostCostEffectiveLevel(3), 1);
}

TEST(FunctionProfile, CostEffectiveZeroCalls)
{
    // No calls: cheapest compile wins.
    EXPECT_EQ(threeLevels().mostCostEffectiveLevel(0), 0);
}

TEST(FunctionProfile, CostEffectiveTieBreaksLow)
{
    const FunctionProfile p("t", 1, {{10, 5}, {15, 4}});
    // n = 5: level 0 -> 35, level 1 -> 35: tie -> level 0.
    EXPECT_EQ(p.mostCostEffectiveLevel(5), 0);
}

TEST(FunctionProfile, Equality)
{
    EXPECT_EQ(threeLevels(), threeLevels());
    const FunctionProfile other("f", 100, {{10, 100}, {50, 40}});
    EXPECT_NE(threeLevels(), other);
}

} // anonymous namespace
} // namespace jitsched
