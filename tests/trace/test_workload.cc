/**
 * @file
 * Unit tests for Workload and its derived indices.
 */

#include <gtest/gtest.h>

#include "trace/workload.hh"

namespace jitsched {
namespace {

Workload
sample()
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("a", 10,
                       std::vector<LevelCosts>{{1, 8}, {4, 3}});
    funcs.emplace_back("b", 20,
                       std::vector<LevelCosts>{{2, 9}, {6, 4}});
    funcs.emplace_back("never", 30,
                       std::vector<LevelCosts>{{3, 7}});
    return Workload("w", std::move(funcs), {1, 0, 1, 1, 0});
}

TEST(Workload, BasicCounts)
{
    const Workload w = sample();
    EXPECT_EQ(w.name(), "w");
    EXPECT_EQ(w.numFunctions(), 3u);
    EXPECT_EQ(w.numCalls(), 5u);
    EXPECT_EQ(w.numCalledFunctions(), 2u);
}

TEST(Workload, CallCounts)
{
    const Workload w = sample();
    EXPECT_EQ(w.callCount(0), 2u);
    EXPECT_EQ(w.callCount(1), 3u);
    EXPECT_EQ(w.callCount(2), 0u);
}

TEST(Workload, FirstCallIndices)
{
    const Workload w = sample();
    EXPECT_EQ(w.firstCallIndex(0), 1);
    EXPECT_EQ(w.firstCallIndex(1), 0);
    EXPECT_EQ(w.firstCallIndex(2), -1);
}

TEST(Workload, FirstAppearanceOrder)
{
    const Workload w = sample();
    const auto &order = w.firstAppearanceOrder();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 0u);
}

TEST(Workload, TotalExecAtLevel)
{
    const Workload w = sample();
    // Level 0: calls b,a,b,b,a = 9+8+9+9+8 = 43.
    EXPECT_EQ(w.totalExecAtLevel(0), 43);
    // Level 1: 4+3+4+4+3 = 18.
    EXPECT_EQ(w.totalExecAtLevel(1), 18);
}

TEST(Workload, TotalExecClampsMissingLevels)
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("single", 1,
                       std::vector<LevelCosts>{{1, 5}});
    const Workload w("t", std::move(funcs), {0, 0});
    // Function has only level 0; asking for level 3 clamps.
    EXPECT_EQ(w.totalExecAtLevel(3), 10);
}

TEST(Workload, MaxLevels)
{
    EXPECT_EQ(sample().maxLevels(), 2u);
}

TEST(Workload, RestrictLevels)
{
    const Workload r = sample().restrictLevels(1);
    EXPECT_EQ(r.maxLevels(), 1u);
    EXPECT_EQ(r.numFunctions(), 3u);
    EXPECT_EQ(r.numCalls(), 5u);
    EXPECT_EQ(r.function(0).numLevels(), 1u);
    EXPECT_EQ(r.function(0).execTime(0), 8);
}

TEST(Workload, RestrictLevelsKeepsShorterProfiles)
{
    const Workload r = sample().restrictLevels(5);
    EXPECT_EQ(r.function(0).numLevels(), 2u);
    EXPECT_EQ(r.function(2).numLevels(), 1u);
}

TEST(Workload, EmptyWorkload)
{
    const Workload w("empty", {}, {});
    EXPECT_EQ(w.numFunctions(), 0u);
    EXPECT_EQ(w.numCalls(), 0u);
    EXPECT_EQ(w.numCalledFunctions(), 0u);
    EXPECT_EQ(w.totalExecAtLevel(0), 0);
}

TEST(WorkloadDeath, CallToUnknownFunction)
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("a", 1, std::vector<LevelCosts>{{1, 1}});
    EXPECT_DEATH(Workload("bad", std::move(funcs), {0, 7}),
                 "unknown function");
}

TEST(WorkloadDeath, FunctionIdOutOfRange)
{
    const Workload w = sample();
    EXPECT_DEATH(w.function(9), "out of range");
    EXPECT_DEATH(w.callCount(9), "out of range");
    EXPECT_DEATH(w.firstCallIndex(9), "out of range");
}

TEST(WorkloadDeath, RestrictToZeroLevels)
{
    EXPECT_DEATH(sample().restrictLevels(0), "at least one level");
}

} // anonymous namespace
} // namespace jitsched
