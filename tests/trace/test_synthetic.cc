/**
 * @file
 * Unit and property tests for the synthetic workload generator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "trace/synthetic.hh"

namespace jitsched {
namespace {

SyntheticConfig
smallConfig(std::uint64_t seed = 1)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 120;
    cfg.numCalls = 20000;
    cfg.seed = seed;
    cfg.targetLevel0ExecTime = 50 * ticksPerMs;
    return cfg;
}

TEST(Synthetic, ShapeMatchesConfig)
{
    const Workload w = generateSynthetic(smallConfig());
    EXPECT_EQ(w.numFunctions(), 120u);
    EXPECT_EQ(w.numCalls(), 20000u);
    EXPECT_EQ(w.maxLevels(), 4u);
}

TEST(Synthetic, EveryFunctionIsCalled)
{
    const Workload w = generateSynthetic(smallConfig());
    EXPECT_EQ(w.numCalledFunctions(), w.numFunctions());
}

TEST(Synthetic, DeterministicBySeed)
{
    const Workload a = generateSynthetic(smallConfig(7));
    const Workload b = generateSynthetic(smallConfig(7));
    EXPECT_EQ(a.calls(), b.calls());
    for (std::size_t f = 0; f < a.numFunctions(); ++f)
        EXPECT_EQ(a.function(static_cast<FuncId>(f)),
                  b.function(static_cast<FuncId>(f)));
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    const Workload a = generateSynthetic(smallConfig(1));
    const Workload b = generateSynthetic(smallConfig(2));
    EXPECT_NE(a.calls(), b.calls());
}

TEST(Synthetic, MonotonicityInvariantsHold)
{
    const Workload w = generateSynthetic(smallConfig(3));
    for (std::size_t i = 0; i < w.numFunctions(); ++i) {
        const auto &prof = w.function(static_cast<FuncId>(i));
        for (std::size_t j = 0; j + 1 < prof.numLevels(); ++j) {
            const auto lj = static_cast<Level>(j);
            const auto lj1 = static_cast<Level>(j + 1);
            EXPECT_LE(prof.compileTime(lj), prof.compileTime(lj1));
            EXPECT_GE(prof.execTime(lj), prof.execTime(lj1));
        }
    }
}

TEST(Synthetic, HitsExecTimeTarget)
{
    const SyntheticConfig cfg = smallConfig(4);
    const Workload w = generateSynthetic(cfg);
    const double actual =
        static_cast<double>(w.totalExecAtLevel(0));
    const double target =
        static_cast<double>(cfg.targetLevel0ExecTime);
    // Rounding each call to >= 1 ns inflates slightly; allow 5%.
    EXPECT_NEAR(actual / target, 1.0, 0.05);
}

TEST(Synthetic, InterpreterLevel0HasZeroCompile)
{
    SyntheticConfig cfg = smallConfig(5);
    cfg.interpreterLevel0 = true;
    const Workload w = generateSynthetic(cfg);
    for (std::size_t i = 0; i < w.numFunctions(); ++i)
        EXPECT_EQ(w.function(static_cast<FuncId>(i)).compileTime(0),
                  0);
}

TEST(Synthetic, CompileTimeScaleScalesCompiles)
{
    SyntheticConfig cfg = smallConfig(6);
    const Workload full = generateSynthetic(cfg);
    cfg.compileTimeScale = 0.25;
    const Workload quarter = generateSynthetic(cfg);

    Tick full_mass = 0, quarter_mass = 0;
    for (std::size_t i = 0; i < full.numFunctions(); ++i) {
        full_mass +=
            full.function(static_cast<FuncId>(i)).compileTime(3);
        quarter_mass +=
            quarter.function(static_cast<FuncId>(i)).compileTime(3);
    }
    EXPECT_NEAR(static_cast<double>(quarter_mass) /
                    static_cast<double>(full_mass),
                0.25, 0.01);
    // Execution side is untouched.
    EXPECT_EQ(full.totalExecAtLevel(0), quarter.totalExecAtLevel(0));
}

TEST(Synthetic, FewerLevels)
{
    SyntheticConfig cfg = smallConfig(8);
    cfg.numLevels = 2;
    const Workload w = generateSynthetic(cfg);
    EXPECT_EQ(w.maxLevels(), 2u);
}

TEST(Synthetic, FirstAppearancesSpreadAcrossPhases)
{
    SyntheticConfig cfg = smallConfig(9);
    cfg.numPhases = 4;
    cfg.sharedFraction = 0.25;
    const Workload w = generateSynthetic(cfg);
    // Some functions must first appear in the second half of the
    // sequence (late phases) and some in the first 10% (startup).
    std::size_t early = 0, late = 0;
    for (std::size_t i = 0; i < w.numFunctions(); ++i) {
        const std::int64_t idx =
            w.firstCallIndex(static_cast<FuncId>(i));
        ASSERT_GE(idx, 0);
        if (idx < static_cast<std::int64_t>(w.numCalls() / 10))
            ++early;
        if (idx > static_cast<std::int64_t>(w.numCalls() / 2))
            ++late;
    }
    EXPECT_GT(early, 10u);
    EXPECT_GT(late, 10u);
}

TEST(Synthetic, ZipfSkewConcentratesCalls)
{
    SyntheticConfig flat = smallConfig(10);
    flat.zipfSkew = 0.2;
    SyntheticConfig steep = smallConfig(10);
    steep.zipfSkew = 1.4;

    auto top_share = [](const Workload &w) {
        std::vector<std::uint64_t> counts;
        for (std::size_t i = 0; i < w.numFunctions(); ++i)
            counts.push_back(
                w.callCount(static_cast<FuncId>(i)));
        std::sort(counts.rbegin(), counts.rend());
        std::uint64_t top = 0;
        for (std::size_t i = 0; i < 10; ++i)
            top += counts[i];
        return static_cast<double>(top) /
               static_cast<double>(w.numCalls());
    };
    EXPECT_GT(top_share(generateSynthetic(steep)),
              top_share(generateSynthetic(flat)) + 0.1);
}

TEST(Synthetic, SequenceSeedVariesOnlyTheCalls)
{
    SyntheticConfig cfg = smallConfig(12);
    cfg.sequenceSeed = 100;
    const Workload a = generateSynthetic(cfg);
    cfg.sequenceSeed = 200;
    const Workload b = generateSynthetic(cfg);

    // Different interleavings...
    EXPECT_NE(a.calls(), b.calls());
    // ...same program: identical profile shapes/sizes and compile
    // times (execution times may differ slightly because each run
    // re-normalizes to the target).
    ASSERT_EQ(a.numFunctions(), b.numFunctions());
    for (std::size_t f = 0; f < a.numFunctions(); ++f) {
        const auto &pa = a.function(static_cast<FuncId>(f));
        const auto &pb = b.function(static_cast<FuncId>(f));
        EXPECT_EQ(pa.size(), pb.size());
        for (std::size_t j = 0; j < pa.numLevels(); ++j)
            EXPECT_EQ(pa.compileTime(static_cast<Level>(j)),
                      pb.compileTime(static_cast<Level>(j)));
    }

    // Hotness structure is preserved: the per-function call counts
    // of the two runs correlate strongly.
    double dot = 0, na = 0, nb = 0;
    for (std::size_t f = 0; f < a.numFunctions(); ++f) {
        const double ca = static_cast<double>(
            a.callCount(static_cast<FuncId>(f)));
        const double cb = static_cast<double>(
            b.callCount(static_cast<FuncId>(f)));
        dot += ca * cb;
        na += ca * ca;
        nb += cb * cb;
    }
    EXPECT_GT(dot / std::sqrt(na * nb), 0.8);
}

TEST(SyntheticDeath, Validation)
{
    SyntheticConfig cfg = smallConfig();
    cfg.numFunctions = 0;
    EXPECT_EXIT(generateSynthetic(cfg),
                ::testing::ExitedWithCode(1), "numFunctions");

    cfg = smallConfig();
    cfg.numCalls = 10; // fewer than functions
    EXPECT_EXIT(generateSynthetic(cfg),
                ::testing::ExitedWithCode(1), "numCalls");

    cfg = smallConfig();
    cfg.numLevels = 9; // more than compileFactor entries
    EXPECT_EXIT(generateSynthetic(cfg),
                ::testing::ExitedWithCode(1), "compileFactor");

    cfg = smallConfig();
    cfg.burstiness = 1.0;
    EXPECT_EXIT(generateSynthetic(cfg),
                ::testing::ExitedWithCode(1), "burstiness");

    cfg = smallConfig();
    cfg.targetLevel0ExecTime = 0;
    EXPECT_EXIT(generateSynthetic(cfg),
                ::testing::ExitedWithCode(1), "targetLevel0ExecTime");

    cfg = smallConfig();
    cfg.firstCallWindow = 0.0;
    EXPECT_EXIT(generateSynthetic(cfg),
                ::testing::ExitedWithCode(1), "firstCallWindow");
}

} // anonymous namespace
} // namespace jitsched
