/**
 * @file
 * Tests for the compact binary trace format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/binary_io.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"

namespace jitsched {
namespace {

Workload
sample(std::uint64_t seed = 111)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 60;
    cfg.numCalls = 6000;
    cfg.seed = seed;
    return generateSynthetic(cfg);
}

void
expectEqualWorkloads(const Workload &a, const Workload &b)
{
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.numFunctions(), b.numFunctions());
    EXPECT_EQ(a.calls(), b.calls());
    for (std::size_t f = 0; f < a.numFunctions(); ++f)
        EXPECT_EQ(a.function(static_cast<FuncId>(f)),
                  b.function(static_cast<FuncId>(f)));
}

TEST(BinaryIo, RoundTrip)
{
    const Workload w = sample();
    std::stringstream ss(std::ios::in | std::ios::out |
                         std::ios::binary);
    writeWorkloadBinary(ss, w);
    expectEqualWorkloads(w, readWorkloadBinary(ss));
}

TEST(BinaryIo, RoundTripEmptyCalls)
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("f", 7, std::vector<LevelCosts>{{1, 2}});
    const Workload w("empty-calls", std::move(funcs), {});
    std::stringstream ss(std::ios::in | std::ios::out |
                         std::ios::binary);
    writeWorkloadBinary(ss, w);
    expectEqualWorkloads(w, readWorkloadBinary(ss));
}

TEST(BinaryIo, SmallerThanText)
{
    const Workload w = sample();
    std::stringstream text, bin;
    writeWorkload(text, w);
    writeWorkloadBinary(bin, w);
    // The bursty traces RLE well; expect a substantial win.
    EXPECT_LT(bin.str().size() * 2, text.str().size());
}

TEST(BinaryIo, FileRoundTripAndAutoLoad)
{
    const std::string path = testing::TempDir() + "/bio_test.jsw";
    const Workload w = sample(7);
    writeWorkloadBinaryFile(path, w);
    expectEqualWorkloads(w, readWorkloadBinaryFile(path));
    expectEqualWorkloads(w, loadWorkloadAuto(path));
    std::remove(path.c_str());
}

TEST(BinaryIo, AutoLoadFallsBackToText)
{
    const std::string path = testing::TempDir() + "/bio_test.wl";
    const Workload w = sample(9);
    writeWorkloadFile(path, w);
    expectEqualWorkloads(w, loadWorkloadAuto(path));
    std::remove(path.c_str());
}

TEST(BinaryIo, DacapoScaleRoundTripPreservesScheduling)
{
    // A realistic-size trace survives the round trip and produces
    // byte-identical scheduling results.
    const Workload w = [&] {
        SyntheticConfig cfg;
        cfg.numFunctions = 400;
        cfg.numCalls = 120000;
        cfg.seed = 115;
        return generateSynthetic(cfg);
    }();
    std::stringstream ss(std::ios::in | std::ios::out |
                         std::ios::binary);
    writeWorkloadBinary(ss, w);
    const Workload r = readWorkloadBinary(ss);
    expectEqualWorkloads(w, r);
}

TEST(BinaryIoDeath, BadMagic)
{
    std::stringstream ss;
    ss << "NOPE and more bytes";
    EXPECT_EXIT(readWorkloadBinary(ss),
                ::testing::ExitedWithCode(1), "bad magic");
}

TEST(BinaryIoDeath, Truncation)
{
    const Workload w = sample(13);
    std::stringstream ss(std::ios::in | std::ios::out |
                         std::ios::binary);
    writeWorkloadBinary(ss, w);
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2),
                          std::ios::in | std::ios::binary);
    EXPECT_EXIT(readWorkloadBinary(cut),
                ::testing::ExitedWithCode(1), "");
}

TEST(BinaryIoDeath, MissingFile)
{
    EXPECT_EXIT(readWorkloadBinaryFile("/nonexistent/x.jsw"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // anonymous namespace
} // namespace jitsched
