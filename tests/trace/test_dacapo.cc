/**
 * @file
 * Unit tests for the Table-1 benchmark configurations.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "trace/dacapo.hh"

namespace jitsched {
namespace {

TEST(Dacapo, NineBenchmarksInTableOrder)
{
    const auto &specs = dacapoSpecs();
    ASSERT_EQ(specs.size(), 9u);
    EXPECT_EQ(specs[0].name, "antlr");
    EXPECT_EQ(specs[2].name, "eclipse");
    EXPECT_EQ(specs[8].name, "pmd");
}

TEST(Dacapo, Table1Numbers)
{
    const DacapoSpec &lusearch = dacapoSpec("lusearch");
    EXPECT_TRUE(lusearch.parallel);
    EXPECT_EQ(lusearch.numFunctions, 543u);
    EXPECT_EQ(lusearch.numCalls, 43573214u);
    EXPECT_DOUBLE_EQ(lusearch.defaultTimeSec, 3.2);

    const DacapoSpec &eclipse = dacapoSpec("eclipse");
    EXPECT_FALSE(eclipse.parallel);
    EXPECT_EQ(eclipse.numFunctions, 2194u);
    EXPECT_EQ(eclipse.numCalls, 467372u);
    EXPECT_DOUBLE_EQ(eclipse.defaultTimeSec, 28.4);
}

TEST(Dacapo, OnlyTwoParallelBenchmarks)
{
    std::size_t parallel = 0;
    for (const auto &spec : dacapoSpecs())
        parallel += spec.parallel ? 1 : 0;
    EXPECT_EQ(parallel, 2u);
}

TEST(DacapoDeath, UnknownBenchmark)
{
    EXPECT_EXIT(dacapoSpec("chart"), ::testing::ExitedWithCode(1),
                "unknown DaCapo benchmark");
}

TEST(Dacapo, ConfigScalesCalls)
{
    const DacapoSpec &spec = dacapoSpec("antlr");
    const SyntheticConfig full = dacapoConfig(spec, 1);
    const SyntheticConfig scaled = dacapoConfig(spec, 16);
    EXPECT_EQ(full.numCalls, spec.numCalls);
    EXPECT_NEAR(static_cast<double>(scaled.numCalls),
                static_cast<double>(spec.numCalls) / 16.0,
                static_cast<double>(spec.numFunctions) * 4);
    EXPECT_EQ(full.numFunctions, spec.numFunctions);
    EXPECT_EQ(scaled.numFunctions, spec.numFunctions);
}

TEST(Dacapo, ConfigScalesCompileMassWithTrace)
{
    const DacapoSpec &spec = dacapoSpec("jython");
    const SyntheticConfig scaled = dacapoConfig(spec, 8);
    EXPECT_NEAR(scaled.compileTimeScale,
                static_cast<double>(scaled.numCalls) /
                    static_cast<double>(spec.numCalls),
                1e-12);
}

TEST(Dacapo, ScaleFloorKeepsFunctionsCallable)
{
    // Extreme scale: the sequence still holds 4 calls per function.
    const DacapoSpec &spec = dacapoSpec("eclipse");
    const SyntheticConfig cfg = dacapoConfig(spec, 1000000);
    EXPECT_GE(cfg.numCalls, cfg.numFunctions * 4);
}

TEST(DacapoDeath, ZeroScale)
{
    EXPECT_EXIT(dacapoConfig(dacapoSpec("fop"), 0),
                ::testing::ExitedWithCode(1), "scale");
}

TEST(Dacapo, WorkloadMatchesSpec)
{
    const Workload w = makeDacapoWorkload("lusearch", 64);
    EXPECT_EQ(w.name(), "lusearch");
    EXPECT_EQ(w.numFunctions(), 543u);
    EXPECT_EQ(w.numCalledFunctions(), 543u);
    EXPECT_EQ(w.maxLevels(), 4u);
}

TEST(Dacapo, SeedsDifferAcrossBenchmarks)
{
    EXPECT_NE(dacapoConfig(dacapoSpec("antlr"), 1).seed,
              dacapoConfig(dacapoSpec("bloat"), 1).seed);
}

TEST(Dacapo, BenchScaleFromEnv)
{
    unsetenv("JITSCHED_FULL");
    EXPECT_EQ(benchScaleFromEnv(16), 16u);
    setenv("JITSCHED_FULL", "1", 1);
    EXPECT_EQ(benchScaleFromEnv(16), 1u);
    setenv("JITSCHED_FULL", "0", 1);
    EXPECT_EQ(benchScaleFromEnv(16), 16u);
    unsetenv("JITSCHED_FULL");
}

} // anonymous namespace
} // namespace jitsched
