/**
 * @file
 * Direct tests of the Fig. 1 / Fig. 2 instance definitions (the
 * timelines themselves are exercised in tests/sim/test_makespan.cc).
 */

#include <gtest/gtest.h>

#include "trace/paper_examples.hh"

namespace jitsched {
namespace {

TEST(PaperExamples, Fig1Shape)
{
    const Workload w = figure1Workload();
    EXPECT_EQ(w.numFunctions(), 3u);
    ASSERT_EQ(w.numCalls(), 4u);
    EXPECT_EQ(w.calls(), (std::vector<FuncId>{0, 1, 2, 1}));
}

TEST(PaperExamples, Fig2AppendsOneCall)
{
    const Workload f1 = figure1Workload();
    const Workload f2 = figure2Workload();
    ASSERT_EQ(f2.numCalls(), 5u);
    EXPECT_EQ(f2.calls().back(), 2u);
    // Same cost table in both.
    for (std::size_t f = 0; f < 3; ++f)
        EXPECT_EQ(f1.function(static_cast<FuncId>(f)),
                  f2.function(static_cast<FuncId>(f)));
}

TEST(PaperExamples, CostTableMatchesThePaper)
{
    const Workload w = figure1Workload();
    // f1: c10 = 1, e10 = 3, c11 = 3, e11 = 2.
    EXPECT_EQ(w.function(1).compileTime(0), 1);
    EXPECT_EQ(w.function(1).execTime(0), 3);
    EXPECT_EQ(w.function(1).compileTime(1), 3);
    EXPECT_EQ(w.function(1).execTime(1), 2);
    // f2: c20 = 3, e20 = 3, c21 = 5, e21 = 1.
    EXPECT_EQ(w.function(2).compileTime(0), 3);
    EXPECT_EQ(w.function(2).execTime(0), 3);
    EXPECT_EQ(w.function(2).compileTime(1), 5);
    EXPECT_EQ(w.function(2).execTime(1), 1);
}

TEST(PaperExamples, SchemesAreValid)
{
    const Workload f1 = figure1Workload();
    const Workload f2 = figure2Workload();
    EXPECT_TRUE(figureSchemeS1().validate(f1));
    EXPECT_TRUE(figureSchemeS2().validate(f1));
    EXPECT_TRUE(figureSchemeS3().validate(f1));
    EXPECT_TRUE(figureSchemeS1Extended().validate(f2));
    EXPECT_TRUE(figureSchemeS2Extended().validate(f2));
    EXPECT_TRUE(figureSchemeS3().validate(f2));
}

} // anonymous namespace
} // namespace jitsched
