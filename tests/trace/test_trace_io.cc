/**
 * @file
 * Unit tests for workload text serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/synthetic.hh"
#include "trace/trace_io.hh"

namespace jitsched {
namespace {

Workload
sample()
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("alpha", 10,
                       std::vector<LevelCosts>{{1, 8}, {4, 3}});
    funcs.emplace_back("beta", 20,
                       std::vector<LevelCosts>{{2, 9}});
    return Workload("sample", std::move(funcs), {0, 1, 0, 0, 1});
}

void
expectEqualWorkloads(const Workload &a, const Workload &b)
{
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.numFunctions(), b.numFunctions());
    ASSERT_EQ(a.numCalls(), b.numCalls());
    EXPECT_EQ(a.calls(), b.calls());
    for (std::size_t f = 0; f < a.numFunctions(); ++f)
        EXPECT_EQ(a.function(static_cast<FuncId>(f)),
                  b.function(static_cast<FuncId>(f)));
}

TEST(TraceIo, RoundTripSmall)
{
    const Workload w = sample();
    std::stringstream ss;
    writeWorkload(ss, w);
    const Workload r = readWorkload(ss);
    expectEqualWorkloads(w, r);
}

TEST(TraceIo, RoundTripSynthetic)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 50;
    cfg.numCalls = 2000;
    cfg.seed = 5;
    const Workload w = generateSynthetic(cfg);
    std::stringstream ss;
    writeWorkload(ss, w);
    const Workload r = readWorkload(ss);
    expectEqualWorkloads(w, r);
}

TEST(TraceIo, ToleratesCommentsAndBlankLines)
{
    std::stringstream ss;
    ss << "# leading comment\n\n"
       << "workload demo\n"
       << "levels 1   # trailing comment\n"
       << "func 0 f0 5 2 3\n"
       << "\n"
       << "calls 2\n"
       << "0 0\n";
    const Workload w = readWorkload(ss);
    EXPECT_EQ(w.name(), "demo");
    EXPECT_EQ(w.numCalls(), 2u);
    EXPECT_EQ(w.function(0).compileTime(0), 2);
}

TEST(TraceIo, CallsAcrossManyLines)
{
    std::stringstream ss;
    ss << "workload demo\nlevels 1\nfunc 0 f0 5 1 1\ncalls 5\n"
       << "0\n0 0\n0\n0\n";
    const Workload w = readWorkload(ss);
    EXPECT_EQ(w.numCalls(), 5u);
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = testing::TempDir() + "/trace_io_test.wl";
    const Workload w = sample();
    writeWorkloadFile(path, w);
    const Workload r = readWorkloadFile(path);
    expectEqualWorkloads(w, r);
    std::remove(path.c_str());
}

TEST(TraceIoDeath, UnknownDirective)
{
    std::stringstream ss;
    ss << "bogus directive\n";
    EXPECT_EXIT(readWorkload(ss), ::testing::ExitedWithCode(1),
                "unknown directive");
}

TEST(TraceIoDeath, WrongCallCount)
{
    std::stringstream ss;
    ss << "workload d\nlevels 1\nfunc 0 f 1 1 1\ncalls 3\n0 0\n";
    EXPECT_EXIT(readWorkload(ss), ::testing::ExitedWithCode(1),
                "expected 3 calls");
}

TEST(TraceIoDeath, NonMonotonicLevels)
{
    std::stringstream ss;
    ss << "workload d\nlevels 2\nfunc 0 f 1 5 1 4 1\ncalls 1\n0\n";
    EXPECT_EXIT(readWorkload(ss), ::testing::ExitedWithCode(1),
                "monotonicity");
}

TEST(TraceIoDeath, NonDenseFunctionIds)
{
    std::stringstream ss;
    ss << "workload d\nlevels 1\nfunc 1 f 1 1 1\ncalls 0\n";
    EXPECT_EXIT(readWorkload(ss), ::testing::ExitedWithCode(1),
                "dense");
}

TEST(TraceIoDeath, FunctionWithoutCosts)
{
    std::stringstream ss;
    ss << "workload d\nlevels 1\nfunc 0 f 1\ncalls 0\n";
    EXPECT_EXIT(readWorkload(ss), ::testing::ExitedWithCode(1),
                "no level costs");
}

TEST(TraceIoDeath, MissingInputFile)
{
    EXPECT_EXIT(readWorkloadFile("/nonexistent/path/x.wl"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIoDeath, BadInteger)
{
    std::stringstream ss;
    ss << "workload d\nlevels 1\nfunc 0 f xyz 1 1\ncalls 0\n";
    EXPECT_EXIT(readWorkload(ss), ::testing::ExitedWithCode(1),
                "bad");
}

// The tryReadWorkload() path: the same malformed inputs that abort
// the process through readWorkload() come back as error strings, so
// a server can answer them instead of dying.

TEST(TraceIoTry, RoundTripMatchesFatalPath)
{
    const Workload w = sample();
    std::stringstream ss;
    writeWorkload(ss, w);
    std::string err;
    const auto r = tryReadWorkload(ss, &err);
    ASSERT_TRUE(r.has_value()) << err;
    expectEqualWorkloads(w, *r);
}

TEST(TraceIoTry, TruncatedFuncLine)
{
    // "func" with id+name but no size / costs: the size token is
    // missing entirely, which must parse-fail, not abort.
    std::stringstream ss;
    ss << "workload d\nlevels 1\nfunc 0 f\ncalls 0\n";
    std::string err;
    EXPECT_FALSE(tryReadWorkload(ss, &err).has_value());
    EXPECT_NE(err.find("bad function size"), std::string::npos) << err;
}

TEST(TraceIoTry, BadCallId)
{
    // Call id past the function table previously escalated to the
    // Workload constructor's panic() (process abort); now an error.
    std::stringstream ss;
    ss << "workload d\nlevels 1\nfunc 0 f 1 1 1\ncalls 2\n0 7\n";
    std::string err;
    EXPECT_FALSE(tryReadWorkload(ss, &err).has_value());
    EXPECT_NE(err.find("references unknown function 7"),
              std::string::npos)
        << err;
}

TEST(TraceIoTry, LevelsMismatch)
{
    // Function declares more level pairs than the header allows.
    std::stringstream ss;
    ss << "workload d\nlevels 1\nfunc 0 f 1 5 9 6 3\ncalls 0\n";
    std::string err;
    EXPECT_FALSE(tryReadWorkload(ss, &err).has_value());
    EXPECT_NE(err.find("more levels than header"), std::string::npos)
        << err;
}

TEST(TraceIoTry, WrongCallCount)
{
    std::stringstream ss;
    ss << "workload d\nlevels 1\nfunc 0 f 1 1 1\ncalls 3\n0 0\n";
    std::string err;
    EXPECT_FALSE(tryReadWorkload(ss, &err).has_value());
    EXPECT_NE(err.find("expected 3 calls"), std::string::npos) << err;
}

TEST(TraceIoTry, NegativeCallCountIsAnErrorNotACrash)
{
    // `calls -1` used to be cast straight to size_t and fed to
    // reserve(), which throws out of the parser — a remote crash on
    // the service path.  It must be an ordinary parse error.
    std::stringstream ss;
    ss << "workload d\nlevels 1\nfunc 0 f 1 1 1\ncalls -1\n";
    std::string err;
    EXPECT_FALSE(tryReadWorkload(ss, &err).has_value());
    EXPECT_NE(err.find("negative call count"), std::string::npos)
        << err;
}

TEST(TraceIoTry, AbsurdCallCountDoesNotThrow)
{
    // A huge declared count must not make reserve() throw
    // length_error/bad_alloc; it fails the end-of-input call-count
    // check like any other short workload.
    std::stringstream ss;
    ss << "workload d\nlevels 1\nfunc 0 f 1 1 1\n"
       << "calls 9999999999999999\n0 0\n";
    std::string err;
    EXPECT_FALSE(tryReadWorkload(ss, &err).has_value());
    EXPECT_NE(err.find("expected 9999999999999999 calls"),
              std::string::npos)
        << err;
}

TEST(TraceIoTry, NegativeLevelCountIsRejected)
{
    std::stringstream ss;
    ss << "workload d\nlevels -3\nfunc 0 f 1 1 1\ncalls 0\n";
    std::string err;
    EXPECT_FALSE(tryReadWorkload(ss, &err).has_value());
    EXPECT_NE(err.find("negative level count"), std::string::npos)
        << err;
}

TEST(TraceIoTry, NegativeFunctionSizeIsRejected)
{
    // A negative size would silently wrap through the uint32_t cast.
    std::stringstream ss;
    ss << "workload d\nlevels 1\nfunc 0 f -5 1 1\ncalls 0\n";
    std::string err;
    EXPECT_FALSE(tryReadWorkload(ss, &err).has_value());
    EXPECT_NE(err.find("negative size"), std::string::npos) << err;
}

TEST(TraceIoTry, ErrorStringUntouchedOnSuccess)
{
    std::stringstream ss;
    writeWorkload(ss, sample());
    std::string err = "sentinel";
    ASSERT_TRUE(tryReadWorkload(ss, &err).has_value());
    EXPECT_EQ(err, "sentinel");
}

TEST(TraceIoTry, StopLineEndsTheWorkload)
{
    // A workload embedded in a larger stream (the wire protocol):
    // parsing stops at the terminator and leaves the rest unread.
    std::stringstream ss;
    ss << "workload demo\nlevels 1\nfunc 0 f0 5 2 3\ncalls 2\n0 0\n"
       << "end\n"
       << "trailing garbage the caller reads next\n";
    std::string err;
    const auto r = tryReadWorkload(ss, &err, "end");
    ASSERT_TRUE(r.has_value()) << err;
    EXPECT_EQ(r->numCalls(), 2u);
    std::string next;
    ASSERT_TRUE(static_cast<bool>(std::getline(ss, next)));
    EXPECT_EQ(next, "trailing garbage the caller reads next");
}

TEST(TraceIoTry, NullErrorPointerIsAccepted)
{
    std::stringstream ss;
    ss << "bogus\n";
    EXPECT_FALSE(tryReadWorkload(ss).has_value());
}

} // anonymous namespace
} // namespace jitsched
