/**
 * @file
 * Shared machinery for the per-figure benchmark binaries: run every
 * scheme of the paper's Figs. 5/6/8 on one workload and collect the
 * normalized make-spans.
 */

#ifndef JITSCHED_BENCH_HARNESS_HH
#define JITSCHED_BENCH_HARNESS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/candidate_levels.hh"
#include "support/types.hh"
#include "trace/workload.hh"
#include "vm/cost_benefit.hh"

namespace jitsched {

/** Make-spans of every scheme on one benchmark, plus the bound. */
struct FigureRow
{
    std::string benchmark;
    Tick lowerBound = 0;
    Tick iar = 0;         ///< IAR schedule (static)
    Tick defaultScheme = 0; ///< Jikes adaptive runtime
    Tick baseOnly = 0;    ///< base-level-only schedule
    Tick optOnly = 0;     ///< optimizing-level-only schedule

    double norm(Tick t) const
    {
        return static_cast<double>(t) /
               static_cast<double>(lowerBound);
    }
};

/**
 * Run the Fig. 5 / Fig. 6 scheme set on a workload.
 *
 * @param w the workload
 * @param model cost-benefit model (Default for Fig. 5, Oracle for
 *              Fig. 6) used for candidate levels and the adaptive
 *              runtime's recompilation test
 */
FigureRow runFigureRow(const Workload &w, ModelKind model);

/** Print a collection of rows as the figure's table, plus averages. */
void printFigure(const std::string &title,
                 const std::vector<FigureRow> &rows);

/**
 * Latency distribution of a batch of timed operations — what a
 * service benchmark reports instead of a single mean (tail latency is
 * the metric that decides whether a scheduling service is usable
 * inside a JIT's compilation pipeline).
 */
struct LatencySummary
{
    std::size_t count = 0;
    double minMs = 0.0;
    double meanMs = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;
};

/** Summarize raw per-operation latencies (milliseconds). */
LatencySummary summarizeLatencies(std::vector<double> samples_ms);

/** One row per labelled distribution, plus a throughput column. */
struct LatencyRow
{
    std::string label;
    LatencySummary latency;
    double throughputPerSec = 0.0; ///< 0 hides the column entry
};

/** Print latency rows as a table (min/mean/p50/p95/p99/max). */
void printLatencyTable(const std::string &title,
                       const std::vector<LatencyRow> &rows);

/**
 * Minimal streaming JSON writer for the machine-readable artifacts
 * some benches emit next to their tables (e.g. BENCH_astar.json).
 * Call order must produce well-formed JSON — keys inside objects,
 * values after keys — which is asserted, not silently repaired.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    JsonWriter &key(const std::string &name);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);

    /** key(name) followed by value(v), for scalar members. */
    template <typename T>
    JsonWriter &
    member(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

  private:
    void separate(); ///< comma/newline/indent before a new element
    void escaped(const std::string &s);

    std::ostream &os_;
    std::vector<bool> first_; ///< per open container: no element yet
    bool after_key_ = false;
};

} // namespace jitsched

#endif // JITSCHED_BENCH_HARNESS_HH
