/**
 * @file
 * Evaluates the paper's Sec. 7 actionable insight — "the first-time
 * compilation of a method should generally get a higher priority
 * than recompilations of other methods" — as a drop-in queue change
 * to the adaptive runtime, and situates the full family of deployed
 * scheduling schemes (Jikes adaptive, HotSpot-style tiered counters,
 * both with FIFO and first-compile-first queues) against IAR.
 */

#include <iostream>

#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "sim/makespan.hh"
#include "support/stats.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "vm/adaptive_runtime.hh"
#include "vm/cost_benefit.hh"
#include "vm/tiered_policy.hh"

using namespace jitsched;

int
main()
{
    const std::size_t scale = benchScaleFromEnv(16);
    std::cout << "== Sec. 7 insight: first-compiles before "
                 "recompiles ==\n(normalized make-span; FCF = "
                 "FirstCompileFirst queue)\n";

    AsciiTable t({"benchmark", "jikes fifo", "jikes FCF",
                  "tiered fifo", "tiered FCF", "IAR"});
    std::vector<double> jf, jp, tf, tp, ia;
    for (const DacapoSpec &spec : dacapoSpecs()) {
        const Workload w = makeDacapoWorkload(spec.name, scale);
        CostBenefitConfig mcfg;
        const TimeEstimates est = buildEstimates(w, mcfg);
        const auto cands = modelCandidateLevels(w, mcfg);
        const double lb = static_cast<double>(
            lowerBoundCandidates(w, cands));

        AdaptiveConfig a;
        a.samplePeriod = defaultSamplePeriod(w);
        AdaptiveConfig ap = a;
        ap.discipline = QueueDiscipline::FirstCompileFirst;

        TieredConfig tc;
        TieredConfig tcp;
        tcp.discipline = QueueDiscipline::FirstCompileFirst;

        const double v_jf =
            static_cast<double>(runAdaptive(w, est, a).sim.makespan);
        const double v_jp = static_cast<double>(
            runAdaptive(w, est, ap).sim.makespan);
        const double v_tf =
            static_cast<double>(runTiered(w, tc).sim.makespan);
        const double v_tp =
            static_cast<double>(runTiered(w, tcp).sim.makespan);
        const double v_ia = static_cast<double>(
            simulate(w, iarSchedule(w, cands).schedule).makespan);

        t.addRow({spec.name, formatFixed(v_jf / lb, 2),
                  formatFixed(v_jp / lb, 2), formatFixed(v_tf / lb, 2),
                  formatFixed(v_tp / lb, 2),
                  formatFixed(v_ia / lb, 2)});
        jf.push_back(v_jf / lb);
        jp.push_back(v_jp / lb);
        tf.push_back(v_tf / lb);
        tp.push_back(v_tp / lb);
        ia.push_back(v_ia / lb);
    }
    t.addSeparator();
    t.addRow({"average", formatFixed(mean(jf), 2),
              formatFixed(mean(jp), 2), formatFixed(mean(tf), 2),
              formatFixed(mean(tp), 2), formatFixed(mean(ia), 2)});
    t.print(std::cout);

    std::cout << "Queue-change speedup: jikes "
              << formatFixed(mean(jf) / mean(jp), 3)
              << "x, tiered " << formatFixed(mean(tf) / mean(tp), 3)
              << "x\n";
    std::cout << "Reading: the insight pays when recompilations "
                 "collide with class-loading bursts (counter-driven "
                 "tiered promotion, most on lusearch); the "
                 "sampling-driven Jikes scheme spreads recompiles "
                 "thinly enough that collisions are rare here.  "
                 "Either way, a queue tweak recovers only a slice of "
                 "the gap — the rest needs the schedule-level "
                 "planning IAR does.\n";
    return 0;
}
