/**
 * @file
 * Reproduces Fig. 8: the V8 scheduling scheme applied to the Java
 * call sequences, restricted to the two lowest levels (Sec. 6.2.4).
 *
 * Paper shape to match: the IAR gap stays tiny (~4% average), the
 * V8 scheme leaves a ~61% average gap, and all gaps are smaller
 * than in the Jikes experiment because the restricted level set
 * raises the lower bound.
 */

#include <iostream>

#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_level.hh"
#include "exec/batch_eval.hh"
#include "sim/makespan.hh"
#include "support/stats.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "vm/v8_policy.hh"

using namespace jitsched;

int
main()
{
    const std::size_t scale = benchScaleFromEnv(16);
    std::cout << "== Figure 8: the V8 scheduling scheme ==\n"
              << "(two lowest levels only; normalized to the lower "
                 "bound)\n";

    AsciiTable t({"benchmark", "lower-bound", "IAR", "V8 scheme",
                  "base-only", "opt-only"});
    std::vector<double> iarn, v8n, basen, optn;
    for (const DacapoSpec &spec : dacapoSpecs()) {
        const Workload w =
            makeDacapoWorkload(spec.name, scale).restrictLevels(2);
        const auto cands = oracleCandidateLevels(w);
        const double lb = static_cast<double>(
            lowerBoundCandidates(w, cands));

        // Static schedules batch on the shared pool; the V8 scheme
        // is an online policy and stays sequential.
        const std::vector<SimResult> sims =
            BatchEvaluator::global().evaluate(
                {{&w, iarSchedule(w, cands).schedule, {}},
                 {&w, baseLevelSchedule(w, cands), {}},
                 {&w, optimizingLevelSchedule(w, cands), {}}});
        const double iar = static_cast<double>(sims[0].makespan);
        const double base = static_cast<double>(sims[1].makespan);
        const double opt = static_cast<double>(sims[2].makespan);
        const double v8 =
            static_cast<double>(runV8(w).sim.makespan);

        t.addRow({spec.name, "1.00", formatFixed(iar / lb, 2),
                  formatFixed(v8 / lb, 2), formatFixed(base / lb, 2),
                  formatFixed(opt / lb, 2)});
        iarn.push_back(iar / lb);
        v8n.push_back(v8 / lb);
        basen.push_back(base / lb);
        optn.push_back(opt / lb);
    }
    t.addSeparator();
    t.addRow({"average", "1.00", formatFixed(mean(iarn), 2),
              formatFixed(mean(v8n), 2), formatFixed(mean(basen), 2),
              formatFixed(mean(optn), 2)});
    t.print(std::cout);

    std::cout << "IAR gap: " << formatFixed((mean(iarn) - 1) * 100, 1)
              << "%  |  V8 gap: "
              << formatFixed((mean(v8n) - 1) * 100, 1) << "%\n";
    std::cout << "Paper reference: IAR ~4% average gap; V8 scheme "
                 "~61% average gap.\n";
    return 0;
}
