/**
 * @file
 * Overhead of the metrics instrumentation on the batch-evaluation
 * throughput path, and of request tracing (spans + flight recorder)
 * on the request-serving path (the acceptance gates for src/obs/:
 * < 2% expected each).
 *
 * Two measurements over the bench_batch_eval job grid, interleaved
 * and best-of-N to shake scheduler noise:
 *
 *  1. instruments runtime-enabled (the default production state);
 *  2. instruments runtime-disabled via MetricsRegistry::setEnabled —
 *     every update degrades to one relaxed load + branch.
 *
 * The delta between the two is what the striped counters and
 * histograms actually cost where they are wired (ThreadPool task
 * accounting, BatchEvaluator batch/job counters, simulate timing).
 * A compile-time -DJITSCHED_OBS=OFF build removes even the disabled
 * baseline's load+branch; that difference is not measurable from a
 * single binary, so this bench bounds the larger of the two gaps.
 *
 * The tracing section runs the same shape over ServiceEngine::serve
 * plus response serialization — every request fully traced (span
 * records + one flight-recorder slot write) against every request
 * untraced — which is exactly the delta a client opting into
 * `option trace-id` pays on a live daemon.
 *
 * Also reports raw ns/op for Counter::add, Histogram::observe,
 * ScopedSpan record and FlightRecorder::record so regressions in the
 * instruments themselves show up directly.
 *
 * Everything lands in BENCH_obs.json.
 *
 * Exit status: 0 when each measured overhead is below the generous
 * failure threshold (8%, far above the expected <2% but below
 * anything that signals an accidental lock or false sharing on the
 * hot path), 1 otherwise.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/iar.hh"
#include "core/single_level.hh"
#include "exec/batch_eval.hh"
#include "harness.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "service/engine.hh"
#include "service/protocol.hh"
#include "sim/makespan.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "vm/cost_benefit.hh"

using namespace jitsched;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** One cold-cache batch evaluation; returns wall seconds. */
double
runBatch(BatchEvaluator &eval, const std::vector<EvalJob> &jobs)
{
    const auto start = std::chrono::steady_clock::now();
    const std::vector<SimResult> results = eval.evaluate(jobs);
    const double t = secondsSince(start);
    if (results.size() != jobs.size()) {
        std::cout << "ERROR: short result batch\n";
        std::exit(1);
    }
    return t;
}

/** ns/op of a hot instrument update loop. */
template <typename Fn>
double
nsPerOp(std::size_t iters, Fn &&fn)
{
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i)
        fn(i);
    return secondsSince(start) * 1e9 / static_cast<double>(iters);
}

} // anonymous namespace

int
main()
{
#ifdef JITSCHED_OBS_DISABLED
    std::cout << "bench_obs: built with JITSCHED_OBS=OFF — nothing "
                 "to measure (instrumentation is compiled out).\n";
    return 0;
#else
    const std::size_t scale = benchScaleFromEnv(16);
    const std::size_t hw = ThreadPool::global().concurrency();
    constexpr int kReps = 5;
    constexpr double kFailThresholdPct = 8.0;

    std::cout << "== Instrumentation overhead on the batch-eval "
                 "path ==\n(hardware threads: " << hw << ", best of "
              << kReps << " interleaved reps)\n\n";

    // The bench_batch_eval job grid, minus the cache (a warm cache
    // would measure lookups, not the instrumented simulate path).
    std::vector<Workload> workloads;
    workloads.reserve(dacapoSpecs().size());
    std::vector<EvalJob> jobs;
    for (const DacapoSpec &spec : dacapoSpecs()) {
        workloads.push_back(makeDacapoWorkload(spec.name, scale));
        const Workload &w = workloads.back();
        const auto cands =
            modelCandidateLevels(w, CostBenefitConfig{});
        const Schedule schedules[] = {
            iarSchedule(w, cands).schedule,
            baseLevelSchedule(w, cands),
            optimizingLevelSchedule(w, cands),
        };
        for (const Schedule &s : schedules)
            for (const std::size_t cores : {1u, 2u, 4u, 8u})
                jobs.push_back({&w, s, {.compileCores = cores}});
    }
    std::cout << "job grid: " << jobs.size() << " evaluations\n\n";

    ThreadPool pool(hw);
    BatchEvaluator eval(pool, /*cache=*/nullptr);

    // Warm up once (thread-pool spin-up, first-touch allocations).
    runBatch(eval, jobs);

    double best_on = 1e30, best_off = 1e30;
    for (int rep = 0; rep < kReps; ++rep) {
        obs::MetricsRegistry::setEnabled(true);
        best_on = std::min(best_on, runBatch(eval, jobs));
        obs::MetricsRegistry::setEnabled(false);
        best_off = std::min(best_off, runBatch(eval, jobs));
    }
    obs::MetricsRegistry::setEnabled(true);

    const double overhead_pct =
        (best_on - best_off) / best_off * 100.0;

    AsciiTable t({"configuration", "best time", "overhead"});
    t.addRow({"instruments disabled (runtime)",
              strprintf("%.3fs", best_off), "(baseline)"});
    t.addRow({"instruments enabled",
              strprintf("%.3fs", best_on),
              strprintf("%+.2f%%", overhead_pct)});
    t.print(std::cout);

    // Raw instrument costs, for when the table above regresses.
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.counter("bench.counter");
    obs::Histogram &h =
        reg.histogram("bench.hist_ns", obs::latencyNsBounds());
    constexpr std::size_t kOps = 20'000'000;
    const double counter_ns =
        nsPerOp(kOps, [&c](std::size_t) { c.add(); });
    const double hist_ns = nsPerOp(kOps, [&h](std::size_t i) {
        h.observe(static_cast<std::int64_t>(i % 1'000'000));
    });
    std::cout << "\nmicro: counter.add " << strprintf("%.1f", counter_ns)
              << " ns/op, histogram.observe "
              << strprintf("%.1f", hist_ns) << " ns/op ("
              << kOps / 1'000'000 << "M ops each, single thread)\n";
    if (c.value() != kOps) { // keep the loops un-elidable
        std::cout << "ERROR: counter lost updates\n";
        return 1;
    }

    // ---- Request tracing on the serving path. ----
    std::cout << "\n== Tracing overhead on the request-serving path "
                 "==\n(engine.serve + responseText per request; "
                 "traced = solve span + trace-id line + one flight-"
                 "recorder slot)\n\n";

    ServiceEngine engine;
    ServiceRequest req;
    req.id = 1;
    req.policy = "iar";
    req.workload = makeDacapoWorkload(dacapoSpecs()[0].name,
                                      std::min<std::size_t>(scale, 8));

    std::size_t byte_sink = 0;
    auto runServe = [&](bool traced, std::size_t iters) {
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < iters; ++i) {
            req.traceId =
                traced ? (0x1000 + static_cast<std::uint64_t>(i)) : 0;
            const ServiceResponse resp = engine.serve(req);
            const std::string text = responseText(resp);
            byte_sink += text.size();
            if (traced) {
                obs::FlightRecord fr;
                fr.traceId = req.traceId;
                fr.requestId = resp.id;
                fr.policy = req.policy;
                fr.status = "ok";
                fr.solveNs = resp.stats.solveNs;
                fr.bytes = text.size();
                obs::FlightRecorder::global().record(fr);
            }
        }
        return secondsSince(start);
    };

    // Calibrate the iteration count to ~0.2s per rep, then interleave
    // traced/untraced best-of-kReps like the section above.
    obs::SpanCollector::setEnabled(true);
    const double probe = runServe(false, 32);
    const std::size_t serve_iters = std::max<std::size_t>(
        64, static_cast<std::size_t>(32 * 0.2 / std::max(probe, 1e-9)));
    std::cout << "request loop: " << serve_iters
              << " serves per rep\n\n";

    double best_traced = 1e30, best_untraced = 1e30;
    for (int rep = 0; rep < kReps; ++rep) {
        best_traced =
            std::min(best_traced, runServe(true, serve_iters));
        best_untraced =
            std::min(best_untraced, runServe(false, serve_iters));
    }
    const double trace_pct =
        (best_traced - best_untraced) / best_untraced * 100.0;

    AsciiTable tt({"configuration", "best time", "overhead"});
    tt.addRow({"untraced requests",
               strprintf("%.3fs", best_untraced), "(baseline)"});
    tt.addRow({"traced requests (spans + flight recorder)",
               strprintf("%.3fs", best_traced),
               strprintf("%+.2f%%", trace_pct)});
    tt.print(std::cout);

    // Raw tracing-primitive costs, for when the table regresses.
    constexpr std::size_t kTraceOps = 2'000'000;
    const double span_ns = nsPerOp(kTraceOps, [](std::size_t i) {
        obs::ScopedSpan span(0x1234 + (i & 0xff), "bench.span");
    });
    obs::FlightRecorder bench_recorder(256);
    const double flight_ns =
        nsPerOp(kTraceOps, [&bench_recorder](std::size_t i) {
            obs::FlightRecord fr;
            fr.traceId = i + 1;
            fr.requestId = i;
            fr.status = "ok";
            bench_recorder.record(std::move(fr));
        });
    std::cout << "\nmicro: scoped-span record "
              << strprintf("%.1f", span_ns)
              << " ns/op, flight-recorder record "
              << strprintf("%.1f", flight_ns) << " ns/op ("
              << kTraceOps / 1'000'000
              << "M ops each, single thread)\n";
    if (bench_recorder.recorded() != kTraceOps || byte_sink == 0) {
        std::cout << "ERROR: tracing loops lost updates\n";
        return 1;
    }

    std::cout << "\nReading: each enabled-vs-disabled delta is the "
                 "full cost of that subsystem on its path; the "
                 "acceptance target is <2%, and anything near "
              << strprintf("%.0f", kFailThresholdPct)
              << "% means an accidental lock or false sharing.\n";

    // ---- Machine-readable artifact. ----
    const char *json_path = "BENCH_obs.json";
    {
        std::ofstream out(json_path);
        JsonWriter j(out);
        j.beginObject();
        j.member("bench", "obs");
        j.member("scale", static_cast<std::uint64_t>(scale));
        j.member("metrics_overhead_pct", overhead_pct);
        j.member("trace_overhead_pct", trace_pct);
        j.member("counter_add_ns", counter_ns);
        j.member("histogram_observe_ns", hist_ns);
        j.member("scoped_span_ns", span_ns);
        j.member("flight_record_ns", flight_ns);
        j.member("fail_threshold_pct", kFailThresholdPct);
        j.endObject();
        out << "\n";
    }
    std::cout << "\nwrote " << json_path << "\n";

    bool failed = false;
    if (overhead_pct > kFailThresholdPct) {
        std::cout << "ERROR: instrumentation overhead "
                  << strprintf("%.2f", overhead_pct)
                  << "% exceeds the " << kFailThresholdPct
                  << "% threshold\n";
        failed = true;
    }
    if (trace_pct > kFailThresholdPct) {
        std::cout << "ERROR: tracing overhead "
                  << strprintf("%.2f", trace_pct)
                  << "% exceeds the " << kFailThresholdPct
                  << "% threshold\n";
        failed = true;
    }
    return failed ? 1 : 0;
#endif
}
