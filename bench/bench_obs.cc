/**
 * @file
 * Overhead of the metrics instrumentation on the batch-evaluation
 * throughput path (the acceptance gate for src/obs/: < 2% expected).
 *
 * Two measurements over the bench_batch_eval job grid, interleaved
 * and best-of-N to shake scheduler noise:
 *
 *  1. instruments runtime-enabled (the default production state);
 *  2. instruments runtime-disabled via MetricsRegistry::setEnabled —
 *     every update degrades to one relaxed load + branch.
 *
 * The delta between the two is what the striped counters and
 * histograms actually cost where they are wired (ThreadPool task
 * accounting, BatchEvaluator batch/job counters, simulate timing).
 * A compile-time -DJITSCHED_OBS=OFF build removes even the disabled
 * baseline's load+branch; that difference is not measurable from a
 * single binary, so this bench bounds the larger of the two gaps.
 *
 * Also reports raw ns/op for Counter::add and Histogram::observe so
 * regressions in the instruments themselves show up directly.
 *
 * Exit status: 0 when the measured overhead is below the generous
 * failure threshold (8%, far above the expected <2% but below
 * anything that signals an accidental lock or false sharing on the
 * hot path), 1 otherwise.
 */

#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "core/iar.hh"
#include "core/single_level.hh"
#include "exec/batch_eval.hh"
#include "obs/metrics.hh"
#include "sim/makespan.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "vm/cost_benefit.hh"

using namespace jitsched;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** One cold-cache batch evaluation; returns wall seconds. */
double
runBatch(BatchEvaluator &eval, const std::vector<EvalJob> &jobs)
{
    const auto start = std::chrono::steady_clock::now();
    const std::vector<SimResult> results = eval.evaluate(jobs);
    const double t = secondsSince(start);
    if (results.size() != jobs.size()) {
        std::cout << "ERROR: short result batch\n";
        std::exit(1);
    }
    return t;
}

/** ns/op of a hot instrument update loop. */
template <typename Fn>
double
nsPerOp(std::size_t iters, Fn &&fn)
{
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i)
        fn(i);
    return secondsSince(start) * 1e9 / static_cast<double>(iters);
}

} // anonymous namespace

int
main()
{
#ifdef JITSCHED_OBS_DISABLED
    std::cout << "bench_obs: built with JITSCHED_OBS=OFF — nothing "
                 "to measure (instrumentation is compiled out).\n";
    return 0;
#else
    const std::size_t scale = benchScaleFromEnv(16);
    const std::size_t hw = ThreadPool::global().concurrency();
    constexpr int kReps = 5;
    constexpr double kFailThresholdPct = 8.0;

    std::cout << "== Instrumentation overhead on the batch-eval "
                 "path ==\n(hardware threads: " << hw << ", best of "
              << kReps << " interleaved reps)\n\n";

    // The bench_batch_eval job grid, minus the cache (a warm cache
    // would measure lookups, not the instrumented simulate path).
    std::vector<Workload> workloads;
    workloads.reserve(dacapoSpecs().size());
    std::vector<EvalJob> jobs;
    for (const DacapoSpec &spec : dacapoSpecs()) {
        workloads.push_back(makeDacapoWorkload(spec.name, scale));
        const Workload &w = workloads.back();
        const auto cands =
            modelCandidateLevels(w, CostBenefitConfig{});
        const Schedule schedules[] = {
            iarSchedule(w, cands).schedule,
            baseLevelSchedule(w, cands),
            optimizingLevelSchedule(w, cands),
        };
        for (const Schedule &s : schedules)
            for (const std::size_t cores : {1u, 2u, 4u, 8u})
                jobs.push_back({&w, s, {.compileCores = cores}});
    }
    std::cout << "job grid: " << jobs.size() << " evaluations\n\n";

    ThreadPool pool(hw);
    BatchEvaluator eval(pool, /*cache=*/nullptr);

    // Warm up once (thread-pool spin-up, first-touch allocations).
    runBatch(eval, jobs);

    double best_on = 1e30, best_off = 1e30;
    for (int rep = 0; rep < kReps; ++rep) {
        obs::MetricsRegistry::setEnabled(true);
        best_on = std::min(best_on, runBatch(eval, jobs));
        obs::MetricsRegistry::setEnabled(false);
        best_off = std::min(best_off, runBatch(eval, jobs));
    }
    obs::MetricsRegistry::setEnabled(true);

    const double overhead_pct =
        (best_on - best_off) / best_off * 100.0;

    AsciiTable t({"configuration", "best time", "overhead"});
    t.addRow({"instruments disabled (runtime)",
              strprintf("%.3fs", best_off), "(baseline)"});
    t.addRow({"instruments enabled",
              strprintf("%.3fs", best_on),
              strprintf("%+.2f%%", overhead_pct)});
    t.print(std::cout);

    // Raw instrument costs, for when the table above regresses.
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.counter("bench.counter");
    obs::Histogram &h =
        reg.histogram("bench.hist_ns", obs::latencyNsBounds());
    constexpr std::size_t kOps = 20'000'000;
    const double counter_ns =
        nsPerOp(kOps, [&c](std::size_t) { c.add(); });
    const double hist_ns = nsPerOp(kOps, [&h](std::size_t i) {
        h.observe(static_cast<std::int64_t>(i % 1'000'000));
    });
    std::cout << "\nmicro: counter.add " << strprintf("%.1f", counter_ns)
              << " ns/op, histogram.observe "
              << strprintf("%.1f", hist_ns) << " ns/op ("
              << kOps / 1'000'000 << "M ops each, single thread)\n";
    if (c.value() != kOps) { // keep the loops un-elidable
        std::cout << "ERROR: counter lost updates\n";
        return 1;
    }

    std::cout << "\nReading: the enabled-vs-disabled delta is the "
                 "full cost of the wired instruments on this path; "
                 "the acceptance target is <2%, and anything near "
              << strprintf("%.0f", kFailThresholdPct)
              << "% means an accidental lock or false sharing.\n";

    if (overhead_pct > kFailThresholdPct) {
        std::cout << "ERROR: instrumentation overhead "
                  << strprintf("%.2f", overhead_pct)
                  << "% exceeds the " << kFailThresholdPct
                  << "% threshold\n";
        return 1;
    }
    return 0;
#endif
}
