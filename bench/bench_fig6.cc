/**
 * @file
 * Reproduces Fig. 6: the Fig. 5 experiment with an *oracle*
 * cost-benefit model (actual times instead of estimates).
 *
 * Paper shape to match: the lower bound drops (better optimizing
 * levels get chosen), the default scheme's gap grows substantially
 * (the paper reports roughly doubling), the IAR gap grows only a
 * few percent, and the potential speedup rises (paper: ~2.3x).
 */

#include <iostream>

#include "core/lower_bound.hh"
#include "harness.hh"
#include "support/stats.hh"
#include "support/strutil.hh"
#include "trace/dacapo.hh"

using namespace jitsched;

int
main()
{
    const std::size_t scale = benchScaleFromEnv(16);
    std::vector<FigureRow> rows;
    std::vector<double> lb_ratio;
    for (const DacapoSpec &spec : dacapoSpecs()) {
        const Workload w = makeDacapoWorkload(spec.name, scale);
        rows.push_back(runFigureRow(w, ModelKind::Oracle));

        CostBenefitConfig def_cfg;
        CostBenefitConfig orc_cfg;
        orc_cfg.kind = ModelKind::Oracle;
        const Tick lb_def = lowerBoundCandidates(
            w, modelCandidateLevels(w, def_cfg));
        const Tick lb_orc = lowerBoundCandidates(
            w, modelCandidateLevels(w, orc_cfg));
        lb_ratio.push_back(static_cast<double>(lb_orc) /
                           static_cast<double>(lb_def));
    }
    printFigure("Figure 6: oracle cost-benefit model", rows);
    std::cout << "Lower-bound movement vs the default model "
                 "(oracle/default, <1 means the bound dropped): avg "
              << formatFixed(mean(lb_ratio), 3) << "\n";
    std::cout << "Paper reference: bound drops, default gap roughly "
                 "doubles, IAR gap grows by no more than ~6%.\n";
    return 0;
}
