/**
 * @file
 * Developer calibration harness (not one of the paper's figures):
 * prints the Fig. 5 scheme set on every Table-1 workload so the
 * synthetic generator's knobs can be tuned against the paper's
 * reported shape.
 */

#include <iostream>

#include "harness.hh"
#include "trace/dacapo.hh"

using namespace jitsched;

int
main()
{
    const std::size_t scale = benchScaleFromEnv(16);
    std::vector<FigureRow> rows;
    for (const DacapoSpec &spec : dacapoSpecs()) {
        const Workload w = makeDacapoWorkload(spec.name, scale);
        rows.push_back(runFigureRow(w, ModelKind::Default));
        std::cerr << spec.name << " done\n";
    }
    printFigure("calibration (default cost-benefit model)", rows);
    return 0;
}
