/**
 * @file
 * Load generator for the scheduling service: an in-process jitschedd
 * on an ephemeral loopback port, hammered by concurrent clients, with
 * throughput and tail latency (p50/p95/p99) reported per scenario.
 *
 * Three scenarios bracket the service's operating range:
 *
 *   cold    every request is a distinct workload — each one pays a
 *           full solve (the cache can only miss)
 *   warm    every request repeats one already-served workload — the
 *           EvalCache answer path, which is what makes the service
 *           viable for a JIT that re-asks about recurring phases
 *   mixed   80% repeats / 20% fresh, the expected steady state
 *
 * A fourth phase measures the request-level result cache on a second
 * server instance (JITSCHED_RESULT_CACHE_MB equivalent): a repeated
 * astar stream whose responses are split into the miss path (fresh
 * exact solves) and the hit path (serialized-response replay) by the
 * per-request `result-cache` stats marker.  The gap between those two
 * p50s is the cache's reason to exist.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "support/logging.hh"
#include "trace/synthetic.hh"

using namespace jitsched;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kClients = 8;
constexpr std::size_t kRequestsPerClient = 32;

Workload
makeWorkload(std::uint64_t variant)
{
    SyntheticConfig cfg;
    cfg.name = "svc-" + std::to_string(variant);
    cfg.numFunctions = 60;
    cfg.numCalls = 1500;
    cfg.seed = 1000 + variant;
    return generateSynthetic(cfg);
}

struct ScenarioResult
{
    std::vector<double> latenciesMs;
    double elapsedSec = 0.0;
    std::uint64_t errors = 0;
};

/**
 * @param pick maps (client, request index) to a workload variant;
 *        equal variants are identical requests and can share cache
 *        entries
 */
ScenarioResult
runScenario(std::uint16_t port, const std::string &policy,
            std::uint64_t (*pick)(std::size_t, std::size_t))
{
    ScenarioResult result;
    std::mutex merge_mutex;

    const auto begin = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            ServiceClient client;
            std::string error;
            if (!client.connect("127.0.0.1", port, &error))
                JITSCHED_FATAL("connect: ", error);
            std::vector<double> local;
            std::uint64_t local_errors = 0;
            for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
                ServiceRequest req;
                req.id = c * kRequestsPerClient + i + 1;
                req.policy = policy;
                req.workload = makeWorkload(pick(c, i));
                const auto t0 = Clock::now();
                auto resp = client.call(req, &error);
                const auto t1 = Clock::now();
                if (!resp)
                    JITSCHED_FATAL("call: ", error);
                if (!resp->ok)
                    ++local_errors;
                local.push_back(
                    std::chrono::duration<double, std::milli>(
                        t1 - t0)
                        .count());
            }
            std::lock_guard<std::mutex> lk(merge_mutex);
            result.latenciesMs.insert(result.latenciesMs.end(),
                                      local.begin(), local.end());
            result.errors += local_errors;
        });
    }
    for (std::thread &t : clients)
        t.join();
    result.elapsedSec =
        std::chrono::duration<double>(Clock::now() - begin).count();
    return result;
}

/**
 * Small instances for the result-cache phase: the astar policy solves
 * these exactly in milliseconds, so the miss path is a real (but
 * bounded) exact search rather than a capped refusal.
 */
Workload
makeAstarWorkload(std::uint64_t variant)
{
    SyntheticConfig cfg;
    cfg.name = "svc-astar-" + std::to_string(variant);
    cfg.numFunctions = 6;
    cfg.numCalls = 40;
    cfg.numLevels = 3;
    cfg.numPhases = 2;
    cfg.seed = 3000 + variant;
    return generateSynthetic(cfg);
}

/** The repeated astar stream, split by how each response was served. */
struct ResultCachePhase
{
    std::vector<double> missMs; ///< fresh solves (result-cache absent)
    std::vector<double> hitMs;  ///< store hits (result-cache 1)
    std::uint64_t collapsed = 0; ///< singleflight followers (2)
    std::uint64_t errors = 0;
    double elapsedSec = 0.0;
};

ResultCachePhase
runResultCachePhase(std::uint16_t port)
{
    ResultCachePhase phase;
    std::mutex merge_mutex;

    const auto begin = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            ServiceClient client;
            std::string error;
            if (!client.connect("127.0.0.1", port, &error))
                JITSCHED_FATAL("connect: ", error);
            std::vector<double> miss, hit;
            std::uint64_t collapsed = 0, errors = 0;
            for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
                ServiceRequest req;
                req.id = 10'000 + c * kRequestsPerClient + i;
                req.policy = "astar";
                req.options.compileCores = 2;
                // Client c alternates between its two private
                // variants: two first-touch misses, then hits — no
                // cross-client collisions, so the miss/hit split is
                // deterministic.
                req.workload =
                    makeAstarWorkload(c * 2 + (i % 2));
                const auto t0 = Clock::now();
                auto resp = client.call(req, &error);
                const auto t1 = Clock::now();
                if (!resp)
                    JITSCHED_FATAL("call: ", error);
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        t1 - t0)
                        .count();
                if (!resp->ok)
                    ++errors;
                else if (resp->stats.resultCache == 1)
                    hit.push_back(ms);
                else if (resp->stats.resultCache == 2)
                    ++collapsed;
                else
                    miss.push_back(ms);
            }
            std::lock_guard<std::mutex> lk(merge_mutex);
            phase.missMs.insert(phase.missMs.end(), miss.begin(),
                                miss.end());
            phase.hitMs.insert(phase.hitMs.end(), hit.begin(),
                               hit.end());
            phase.collapsed += collapsed;
            phase.errors += errors;
        });
    }
    for (std::thread &t : clients)
        t.join();
    phase.elapsedSec =
        std::chrono::duration<double>(Clock::now() - begin).count();
    return phase;
}

std::uint64_t
pickCold(std::size_t c, std::size_t i)
{
    return c * kRequestsPerClient + i; // all distinct
}

std::uint64_t
pickWarm(std::size_t, std::size_t)
{
    return 0; // all identical
}

std::uint64_t
pickMixed(std::size_t c, std::size_t i)
{
    // 1-in-5 requests is fresh; the rest cycle a small hot set.
    if ((c + i) % 5 == 0)
        return 100 + c * kRequestsPerClient + i;
    return (c + i) % 4;
}

LatencyRow
toRow(const std::string &label, const ScenarioResult &r)
{
    LatencyRow row;
    row.label = label;
    row.latency = summarizeLatencies(r.latenciesMs);
    if (r.elapsedSec > 0.0)
        row.throughputPerSec =
            static_cast<double>(r.latenciesMs.size()) / r.elapsedSec;
    return row;
}

} // anonymous namespace

int
main()
{
    ServiceEngine engine;
    ServiceServer server(engine);
    std::string error;
    if (!server.start(&error))
        JITSCHED_FATAL("cannot start server: ", error);
    std::cout << "service bench: " << kClients << " clients x "
              << kRequestsPerClient << " requests, policy iar, "
              << "loopback port " << server.port() << "\n\n";

    struct Scenario
    {
        std::string label;
        ScenarioResult result;
    };
    std::vector<Scenario> scenarios;
    scenarios.push_back(
        {"cold (all distinct)",
         runScenario(server.port(), "iar", pickCold)});
    scenarios.push_back(
        {"warm (all duplicate)",
         runScenario(server.port(), "iar", pickWarm)});
    scenarios.push_back(
        {"mixed (80% repeat)",
         runScenario(server.port(), "iar", pickMixed)});

    // --- Result-cache phase: a second server with the request-level
    // result cache enabled (the first one keeps it off, measuring
    // today's default path).
    ServiceEngine cache_engine;
    ServerConfig cache_cfg;
    cache_cfg.resultCacheBytes = std::size_t(64) << 20;
    ServiceServer cache_server(cache_engine, cache_cfg);
    if (!cache_server.start(&error))
        JITSCHED_FATAL("cannot start cache server: ", error);
    const ResultCachePhase cache_phase =
        runResultCachePhase(cache_server.port());
    if (cache_phase.errors != 0)
        JITSCHED_FATAL("result-cache phase served errors: ",
                       cache_phase.errors);

    std::vector<LatencyRow> rows;
    for (const Scenario &s : scenarios)
        rows.push_back(toRow(s.label, s.result));

    LatencyRow miss_row, hit_row;
    miss_row.label = "astar repeated, miss path";
    miss_row.latency = summarizeLatencies(cache_phase.missMs);
    hit_row.label = "astar repeated, hit path";
    hit_row.latency = summarizeLatencies(cache_phase.hitMs);
    rows.push_back(miss_row);
    rows.push_back(hit_row);
    printLatencyTable("scheduling service latency", rows);

    const auto &rc = cache_server.resultCache().counters();
    const std::uint64_t rc_served = cache_phase.missMs.size() +
                                    cache_phase.hitMs.size() +
                                    cache_phase.collapsed;
    const double rc_hit_rate =
        rc_served > 0
            ? static_cast<double>(cache_phase.hitMs.size() +
                                  cache_phase.collapsed) /
                  static_cast<double>(rc_served)
            : 0.0;
    const double rc_speedup =
        hit_row.latency.p50Ms > 0.0
            ? miss_row.latency.p50Ms / hit_row.latency.p50Ms
            : 0.0;
    std::cout << "result cache: hit rate " << rc_hit_rate << " ("
              << cache_phase.hitMs.size() << " hits, "
              << cache_phase.collapsed << " collapsed, "
              << cache_phase.missMs.size()
              << " misses), hit-path p50 speedup " << rc_speedup
              << "x\n";

    const std::uint64_t hits = engine.cache().hits();
    const std::uint64_t misses = engine.cache().misses();
    std::cout << "cache: " << hits << " hits / " << misses
              << " misses  |  admission: "
              << server.admission().processed() << " processed, "
              << server.admission().shed() << " shed\n";

    // The machine-readable artifact next to the table.
    const char *json_path = "BENCH_service.json";
    std::ofstream out(json_path);
    JsonWriter j(out);
    j.beginObject();
    j.member("bench", "service");
    j.member("policy", "iar");
    j.member("clients", std::uint64_t(kClients));
    j.member("requestsPerClient",
             std::uint64_t(kRequestsPerClient));
    j.key("scenarios").beginArray();
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const LatencySummary &l = rows[i].latency;
        j.beginObject();
        j.member("label", scenarios[i].label);
        j.member("requests", std::uint64_t(l.count));
        j.member("errors", scenarios[i].result.errors);
        j.member("p50Ms", l.p50Ms);
        j.member("p95Ms", l.p95Ms);
        j.member("p99Ms", l.p99Ms);
        j.member("meanMs", l.meanMs);
        j.member("throughputPerSec", rows[i].throughputPerSec);
        j.endObject();
    }
    j.endArray();
    j.key("cache").beginObject();
    j.member("hits", hits);
    j.member("misses", misses);
    j.member("hitRate",
             hits + misses > 0
                 ? static_cast<double>(hits) /
                       static_cast<double>(hits + misses)
                 : 0.0);
    j.endObject();
    j.key("admission").beginObject();
    j.member("processed", server.admission().processed());
    j.member("shed", server.admission().shed());
    j.endObject();
    j.key("resultCache").beginObject();
    j.member("policy", "astar");
    j.member("requests", rc_served);
    j.member("hitRate", rc_hit_rate);
    j.member("missP50Ms", miss_row.latency.p50Ms);
    j.member("missP95Ms", miss_row.latency.p95Ms);
    j.member("missP99Ms", miss_row.latency.p99Ms);
    j.member("hitP50Ms", hit_row.latency.p50Ms);
    j.member("hitP95Ms", hit_row.latency.p95Ms);
    j.member("hitP99Ms", hit_row.latency.p99Ms);
    j.member("speedupP50", rc_speedup);
    j.member("hits", rc.hits);
    j.member("misses", rc.misses);
    j.member("collapsed", rc.collapsed);
    j.member("insertions", rc.insertions);
    j.member("evictions", rc.evictions);
    j.endObject();
    j.endObject();
    out << "\n";
    std::cout << "Wrote " << json_path << "\n";

    cache_server.stop();
    server.stop();
    return 0;
}
