/**
 * @file
 * Load generator for the scheduling service: an in-process jitschedd
 * on an ephemeral loopback port, hammered by concurrent clients, with
 * throughput and tail latency (p50/p95/p99) reported per scenario.
 *
 * Three scenarios bracket the service's operating range:
 *
 *   cold    every request is a distinct workload — each one pays a
 *           full solve (the cache can only miss)
 *   warm    every request repeats one already-served workload — the
 *           EvalCache answer path, which is what makes the service
 *           viable for a JIT that re-asks about recurring phases
 *   mixed   80% repeats / 20% fresh, the expected steady state
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "support/logging.hh"
#include "trace/synthetic.hh"

using namespace jitsched;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kClients = 8;
constexpr std::size_t kRequestsPerClient = 32;

Workload
makeWorkload(std::uint64_t variant)
{
    SyntheticConfig cfg;
    cfg.name = "svc-" + std::to_string(variant);
    cfg.numFunctions = 60;
    cfg.numCalls = 1500;
    cfg.seed = 1000 + variant;
    return generateSynthetic(cfg);
}

struct ScenarioResult
{
    std::vector<double> latenciesMs;
    double elapsedSec = 0.0;
    std::uint64_t errors = 0;
};

/**
 * @param pick maps (client, request index) to a workload variant;
 *        equal variants are identical requests and can share cache
 *        entries
 */
ScenarioResult
runScenario(std::uint16_t port, const std::string &policy,
            std::uint64_t (*pick)(std::size_t, std::size_t))
{
    ScenarioResult result;
    std::mutex merge_mutex;

    const auto begin = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            ServiceClient client;
            std::string error;
            if (!client.connect("127.0.0.1", port, &error))
                JITSCHED_FATAL("connect: ", error);
            std::vector<double> local;
            std::uint64_t local_errors = 0;
            for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
                ServiceRequest req;
                req.id = c * kRequestsPerClient + i + 1;
                req.policy = policy;
                req.workload = makeWorkload(pick(c, i));
                const auto t0 = Clock::now();
                auto resp = client.call(req, &error);
                const auto t1 = Clock::now();
                if (!resp)
                    JITSCHED_FATAL("call: ", error);
                if (!resp->ok)
                    ++local_errors;
                local.push_back(
                    std::chrono::duration<double, std::milli>(
                        t1 - t0)
                        .count());
            }
            std::lock_guard<std::mutex> lk(merge_mutex);
            result.latenciesMs.insert(result.latenciesMs.end(),
                                      local.begin(), local.end());
            result.errors += local_errors;
        });
    }
    for (std::thread &t : clients)
        t.join();
    result.elapsedSec =
        std::chrono::duration<double>(Clock::now() - begin).count();
    return result;
}

std::uint64_t
pickCold(std::size_t c, std::size_t i)
{
    return c * kRequestsPerClient + i; // all distinct
}

std::uint64_t
pickWarm(std::size_t, std::size_t)
{
    return 0; // all identical
}

std::uint64_t
pickMixed(std::size_t c, std::size_t i)
{
    // 1-in-5 requests is fresh; the rest cycle a small hot set.
    if ((c + i) % 5 == 0)
        return 100 + c * kRequestsPerClient + i;
    return (c + i) % 4;
}

LatencyRow
toRow(const std::string &label, const ScenarioResult &r)
{
    LatencyRow row;
    row.label = label;
    row.latency = summarizeLatencies(r.latenciesMs);
    if (r.elapsedSec > 0.0)
        row.throughputPerSec =
            static_cast<double>(r.latenciesMs.size()) / r.elapsedSec;
    return row;
}

} // anonymous namespace

int
main()
{
    ServiceEngine engine;
    ServiceServer server(engine);
    std::string error;
    if (!server.start(&error))
        JITSCHED_FATAL("cannot start server: ", error);
    std::cout << "service bench: " << kClients << " clients x "
              << kRequestsPerClient << " requests, policy iar, "
              << "loopback port " << server.port() << "\n\n";

    struct Scenario
    {
        std::string label;
        ScenarioResult result;
    };
    std::vector<Scenario> scenarios;
    scenarios.push_back(
        {"cold (all distinct)",
         runScenario(server.port(), "iar", pickCold)});
    scenarios.push_back(
        {"warm (all duplicate)",
         runScenario(server.port(), "iar", pickWarm)});
    scenarios.push_back(
        {"mixed (80% repeat)",
         runScenario(server.port(), "iar", pickMixed)});

    std::vector<LatencyRow> rows;
    for (const Scenario &s : scenarios)
        rows.push_back(toRow(s.label, s.result));
    printLatencyTable("scheduling service latency", rows);

    const std::uint64_t hits = engine.cache().hits();
    const std::uint64_t misses = engine.cache().misses();
    std::cout << "cache: " << hits << " hits / " << misses
              << " misses  |  admission: "
              << server.admission().processed() << " processed, "
              << server.admission().shed() << " shed\n";

    // The machine-readable artifact next to the table.
    const char *json_path = "BENCH_service.json";
    std::ofstream out(json_path);
    JsonWriter j(out);
    j.beginObject();
    j.member("bench", "service");
    j.member("policy", "iar");
    j.member("clients", std::uint64_t(kClients));
    j.member("requestsPerClient",
             std::uint64_t(kRequestsPerClient));
    j.key("scenarios").beginArray();
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const LatencySummary &l = rows[i].latency;
        j.beginObject();
        j.member("label", scenarios[i].label);
        j.member("requests", std::uint64_t(l.count));
        j.member("errors", scenarios[i].result.errors);
        j.member("p50Ms", l.p50Ms);
        j.member("p95Ms", l.p95Ms);
        j.member("p99Ms", l.p99Ms);
        j.member("meanMs", l.meanMs);
        j.member("throughputPerSec", rows[i].throughputPerSec);
        j.endObject();
    }
    j.endArray();
    j.key("cache").beginObject();
    j.member("hits", hits);
    j.member("misses", misses);
    j.member("hitRate",
             hits + misses > 0
                 ? static_cast<double>(hits) /
                       static_cast<double>(hits + misses)
                 : 0.0);
    j.endObject();
    j.key("admission").beginObject();
    j.member("processed", server.admission().processed());
    j.member("shed", server.admission().shed());
    j.endObject();
    j.endObject();
    out << "\n";
    std::cout << "Wrote " << json_path << "\n";

    server.stop();
    return 0;
}
