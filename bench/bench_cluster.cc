/**
 * @file
 * Load generator for the sharded scheduling cluster: an in-process
 * ClusterHarness (N jitschedd backends behind one router), hammered
 * by concurrent clients through the router's port.
 *
 * Four questions, one table each, all landing in BENCH_cluster.json:
 *
 *   scaling    tail latency of a mixed stream for 1 / 2 / 4 shards
 *   affinity   cluster-wide EvalCache hit rate of fingerprint-affine
 *              routing vs round-robin on the same 2-backend stream —
 *              the number that justifies the consistent-hash ring
 *   bounce     a backend killed and restarted mid-run: every request
 *              must still be answered (errors stays 0) while the
 *              router ejects, spills, and re-admits
 *   result     a repeated astar stream against cache-enabled backends
 *   cache      (ServerConfig::resultCacheBytes): responses split into
 *              miss path (fresh exact solves) and hit path (replayed
 *              serialized responses) by the `result-cache` stats
 *              marker the backends emit and the router relays
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/harness.hh"
#include "harness.hh"
#include "service/client.hh"
#include "support/logging.hh"
#include "trace/synthetic.hh"

using namespace jitsched;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kClients = 8;
constexpr std::size_t kRequestsPerClient = 24;

Workload
makeWorkload(std::uint64_t variant)
{
    SyntheticConfig cfg;
    cfg.name = "cluster-" + std::to_string(variant);
    cfg.numFunctions = 60;
    cfg.numCalls = 1500;
    cfg.seed = 2000 + variant;
    return generateSynthetic(cfg);
}

/** Harness knobs tuned so a mid-run bounce resolves in ms. */
cluster::ClusterHarnessConfig
clusterConfig(std::size_t backends, cluster::RoutingMode mode)
{
    cluster::ClusterHarnessConfig cfg;
    cfg.backends = backends;
    cfg.router.mode = mode;
    cfg.router.maxTries = 4;
    cfg.router.backoffBaseMs = 1;
    cfg.router.backoffMaxMs = 10;
    cfg.router.pool.connectTimeoutMs = 500;
    cfg.router.pool.probeIntervalMs = 10;
    cfg.router.pool.health.suspectAfter = 1;
    cfg.router.pool.health.downAfter = 2;
    cfg.router.pool.health.probeDelayMs = 50;
    cfg.router.pool.health.probeSuccesses = 1;
    return cfg;
}

struct ScenarioResult
{
    std::vector<double> latenciesMs;
    double elapsedSec = 0.0;
    std::uint64_t errors = 0;
    double cacheHitRate = 0.0;
    std::uint64_t spilled = 0;
    std::uint64_t failed = 0;
    std::uint64_t readmissions = 0;
};

double
clusterHitRate(cluster::ClusterHarness &cluster)
{
    std::uint64_t hits = 0, misses = 0;
    for (std::size_t b = 0; b < cluster.backendCount(); ++b) {
        hits += cluster.backendEngine(b).cache().hits();
        misses += cluster.backendEngine(b).cache().misses();
    }
    return hits + misses > 0
               ? static_cast<double>(hits) /
                     static_cast<double>(hits + misses)
               : 0.0;
}

/**
 * Drive the standard client fleet against @p cluster's router.
 * @param pick maps (client, request index) to a workload variant;
 *        equal variants are identical requests and can share cache
 *        entries on whichever backend serves them
 */
ScenarioResult
runScenario(cluster::ClusterHarness &cluster,
            std::uint64_t (*pick)(std::size_t, std::size_t))
{
    ScenarioResult result;
    std::mutex merge_mutex;

    const auto begin = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            ServiceClient client;
            std::string error;
            if (!client.connect("127.0.0.1", cluster.routerPort(),
                                &error))
                JITSCHED_FATAL("connect: ", error);
            std::vector<double> local;
            std::uint64_t local_errors = 0;
            for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
                ServiceRequest req;
                req.id = c * kRequestsPerClient + i + 1;
                req.policy = "iar";
                req.workload = makeWorkload(pick(c, i));
                const auto t0 = Clock::now();
                auto resp = client.call(req, &error);
                const auto t1 = Clock::now();
                if (!resp)
                    JITSCHED_FATAL("call: ", error);
                if (!resp->ok)
                    ++local_errors;
                local.push_back(
                    std::chrono::duration<double, std::milli>(
                        t1 - t0)
                        .count());
            }
            std::lock_guard<std::mutex> lk(merge_mutex);
            result.latenciesMs.insert(result.latenciesMs.end(),
                                      local.begin(), local.end());
            result.errors += local_errors;
        });
    }
    for (std::thread &t : clients)
        t.join();
    result.elapsedSec =
        std::chrono::duration<double>(Clock::now() - begin).count();
    result.cacheHitRate = clusterHitRate(cluster);
    result.spilled = cluster.router().requestsSpilled();
    result.failed = cluster.router().requestsFailed();
    for (std::size_t b = 0; b < cluster.backendCount(); ++b)
        result.readmissions +=
            cluster.router().pool().readmissions(b);
    return result;
}

/**
 * Small instances for the result-cache scenario: astar solves these
 * exactly in milliseconds, so the miss path is a real exact search.
 */
Workload
makeAstarWorkload(std::uint64_t variant)
{
    SyntheticConfig cfg;
    cfg.name = "cluster-astar-" + std::to_string(variant);
    cfg.numFunctions = 6;
    cfg.numCalls = 40;
    cfg.numLevels = 3;
    cfg.numPhases = 2;
    cfg.seed = 4000 + variant;
    return generateSynthetic(cfg);
}

/** The repeated astar stream, split by how each response was served. */
struct ResultCachePhase
{
    std::vector<double> missMs; ///< fresh solves (result-cache absent)
    std::vector<double> hitMs;  ///< store hits (result-cache 1)
    std::uint64_t collapsed = 0; ///< singleflight followers (2)
    std::uint64_t errors = 0;
    double elapsedSec = 0.0;
};

ResultCachePhase
runResultCachePhase(cluster::ClusterHarness &cluster)
{
    ResultCachePhase phase;
    std::mutex merge_mutex;

    const auto begin = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            ServiceClient client;
            std::string error;
            if (!client.connect("127.0.0.1", cluster.routerPort(),
                                &error))
                JITSCHED_FATAL("connect: ", error);
            std::vector<double> miss, hit;
            std::uint64_t collapsed = 0, errors = 0;
            for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
                ServiceRequest req;
                req.id = 20'000 + c * kRequestsPerClient + i;
                req.policy = "astar";
                req.options.compileCores = 2;
                // Client c alternates between its two private
                // variants: two first-touch misses, then hits.
                // Fingerprint-affine routing keeps each variant on
                // one backend, so the repeats find its cache entry.
                req.workload =
                    makeAstarWorkload(c * 2 + (i % 2));
                const auto t0 = Clock::now();
                auto resp = client.call(req, &error);
                const auto t1 = Clock::now();
                if (!resp)
                    JITSCHED_FATAL("call: ", error);
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        t1 - t0)
                        .count();
                if (!resp->ok)
                    ++errors;
                else if (resp->stats.resultCache == 1)
                    hit.push_back(ms);
                else if (resp->stats.resultCache == 2)
                    ++collapsed;
                else
                    miss.push_back(ms);
            }
            std::lock_guard<std::mutex> lk(merge_mutex);
            phase.missMs.insert(phase.missMs.end(), miss.begin(),
                                miss.end());
            phase.hitMs.insert(phase.hitMs.end(), hit.begin(),
                               hit.end());
            phase.collapsed += collapsed;
            phase.errors += errors;
        });
    }
    for (std::thread &t : clients)
        t.join();
    phase.elapsedSec =
        std::chrono::duration<double>(Clock::now() - begin).count();
    return phase;
}

std::uint64_t
pickMixed(std::size_t c, std::size_t i)
{
    // 1-in-5 requests is fresh; the rest cycle a small hot set.
    if ((c + i) % 5 == 0)
        return 100 + c * kRequestsPerClient + i;
    return (c + i) % 4;
}

std::uint64_t
pickPairs(std::size_t c, std::size_t i)
{
    // Every variant appears exactly twice, back to back in one
    // client's stream: the second occurrence is a cache hit only if
    // the router sends it to the same backend as the first — the
    // sharpest affinity-vs-round-robin discriminator.
    return c * 1000 + i / 2;
}

LatencyRow
toRow(const std::string &label, const ScenarioResult &r)
{
    LatencyRow row;
    row.label = label;
    row.latency = summarizeLatencies(r.latenciesMs);
    if (r.elapsedSec > 0.0)
        row.throughputPerSec =
            static_cast<double>(r.latenciesMs.size()) / r.elapsedSec;
    return row;
}

void
writeScenarioJson(JsonWriter &j, const std::string &label,
                  std::size_t backends, const std::string &mode,
                  const ScenarioResult &r)
{
    const LatencySummary l = summarizeLatencies(r.latenciesMs);
    j.beginObject();
    j.member("label", label);
    j.member("backends", std::uint64_t(backends));
    j.member("mode", mode);
    j.member("requests", std::uint64_t(l.count));
    j.member("errors", r.errors);
    j.member("p50Ms", l.p50Ms);
    j.member("p95Ms", l.p95Ms);
    j.member("p99Ms", l.p99Ms);
    j.member("meanMs", l.meanMs);
    j.member("throughputPerSec",
             r.elapsedSec > 0.0
                 ? static_cast<double>(l.count) / r.elapsedSec
                 : 0.0);
    j.member("cacheHitRate", r.cacheHitRate);
    j.member("spilled", r.spilled);
    j.member("failed", r.failed);
    j.member("readmissions", r.readmissions);
    j.endObject();
}

} // anonymous namespace

int
main()
{
    std::cout << "cluster bench: " << kClients << " clients x "
              << kRequestsPerClient
              << " requests per scenario, policy iar\n\n";

    const char *json_path = "BENCH_cluster.json";
    std::ofstream out(json_path);
    JsonWriter j(out);
    j.beginObject();
    j.member("bench", "cluster");
    j.member("policy", "iar");
    j.member("clients", std::uint64_t(kClients));
    j.member("requestsPerClient",
             std::uint64_t(kRequestsPerClient));
    j.key("scenarios").beginArray();

    std::vector<LatencyRow> rows;

    // --- Scaling: the same mixed stream against 1 / 2 / 4 shards.
    for (const std::size_t backends : {1u, 2u, 4u}) {
        cluster::ClusterHarness cluster(clusterConfig(
            backends, cluster::RoutingMode::Affinity));
        std::string error;
        if (!cluster.start(&error))
            JITSCHED_FATAL("cluster start: ", error);
        const ScenarioResult r = runScenario(cluster, pickMixed);
        const std::string label =
            "mixed, " + std::to_string(backends) + " backend(s)";
        rows.push_back(toRow(label, r));
        writeScenarioJson(j, label, backends, "affinity", r);
        if (r.errors != 0)
            JITSCHED_FATAL("scaling scenario served errors");
    }

    // --- Affinity vs round-robin, identical 2-backend pair stream.
    double affinity_rate = 0.0, rr_rate = 0.0;
    {
        cluster::ClusterHarness cluster(
            clusterConfig(2, cluster::RoutingMode::Affinity));
        std::string error;
        if (!cluster.start(&error))
            JITSCHED_FATAL("cluster start: ", error);
        const ScenarioResult r = runScenario(cluster, pickPairs);
        affinity_rate = r.cacheHitRate;
        rows.push_back(toRow("pairs, 2 backends, affinity", r));
        writeScenarioJson(j, "pairs, 2 backends, affinity", 2,
                          "affinity", r);
    }
    {
        cluster::ClusterHarness cluster(
            clusterConfig(2, cluster::RoutingMode::RoundRobin));
        std::string error;
        if (!cluster.start(&error))
            JITSCHED_FATAL("cluster start: ", error);
        const ScenarioResult r = runScenario(cluster, pickPairs);
        rr_rate = r.cacheHitRate;
        rows.push_back(toRow("pairs, 2 backends, round-robin", r));
        writeScenarioJson(j, "pairs, 2 backends, round-robin", 2,
                          "round-robin", r);
    }

    // --- Bounce: kill one of two backends mid-run, restart it, and
    // require that not a single request was failed or answered with
    // an error.
    {
        cluster::ClusterHarness cluster(
            clusterConfig(2, cluster::RoutingMode::Affinity));
        std::string error;
        if (!cluster.start(&error))
            JITSCHED_FATAL("cluster start: ", error);

        std::thread bouncer([&cluster] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            cluster.killBackend(1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(150));
            std::string restart_error;
            if (!cluster.restartBackend(1, &restart_error))
                JITSCHED_FATAL("restart: ", restart_error);
        });
        const ScenarioResult r = runScenario(cluster, pickMixed);
        bouncer.join();
        rows.push_back(toRow("mixed, 2 backends, one bounced", r));
        writeScenarioJson(j, "mixed, 2 backends, one bounced", 2,
                          "affinity", r);
        if (r.errors != 0 || r.failed != 0)
            JITSCHED_FATAL("bounce scenario dropped requests: ",
                           r.errors, " errors, ", r.failed,
                           " failed");
    }

    j.endArray();

    // --- Result cache: a repeated astar stream against two
    // cache-enabled backends behind affinity routing.
    ResultCachePhase cache_phase;
    std::uint64_t rc_hits = 0, rc_misses = 0, rc_collapsed = 0,
                  rc_insertions = 0;
    {
        cluster::ClusterHarnessConfig cfg =
            clusterConfig(2, cluster::RoutingMode::Affinity);
        cfg.backend.resultCacheBytes = std::size_t(64) << 20;
        cluster::ClusterHarness cluster(cfg);
        std::string error;
        if (!cluster.start(&error))
            JITSCHED_FATAL("cluster start: ", error);
        cache_phase = runResultCachePhase(cluster);
        if (cache_phase.errors != 0)
            JITSCHED_FATAL("result-cache scenario served errors: ",
                           cache_phase.errors);
        for (std::size_t b = 0; b < cluster.backendCount(); ++b) {
            const ResultCache::Counters rc =
                cluster.backendServer(b).resultCache().counters();
            rc_hits += rc.hits;
            rc_misses += rc.misses;
            rc_collapsed += rc.collapsed;
            rc_insertions += rc.insertions;
        }
    }
    LatencyRow rc_miss_row, rc_hit_row;
    rc_miss_row.label = "astar repeated, miss path";
    rc_miss_row.latency = summarizeLatencies(cache_phase.missMs);
    rc_hit_row.label = "astar repeated, hit path";
    rc_hit_row.latency = summarizeLatencies(cache_phase.hitMs);
    rows.push_back(rc_miss_row);
    rows.push_back(rc_hit_row);
    const std::uint64_t rc_served = cache_phase.missMs.size() +
                                    cache_phase.hitMs.size() +
                                    cache_phase.collapsed;
    const double rc_hit_rate =
        rc_served > 0
            ? static_cast<double>(cache_phase.hitMs.size() +
                                  cache_phase.collapsed) /
                  static_cast<double>(rc_served)
            : 0.0;
    const double rc_speedup =
        rc_hit_row.latency.p50Ms > 0.0
            ? rc_miss_row.latency.p50Ms / rc_hit_row.latency.p50Ms
            : 0.0;

    j.key("resultCache").beginObject();
    j.member("policy", "astar");
    j.member("backends", std::uint64_t(2));
    j.member("mode", "affinity");
    j.member("requests", rc_served);
    j.member("hitRate", rc_hit_rate);
    j.member("missP50Ms", rc_miss_row.latency.p50Ms);
    j.member("missP95Ms", rc_miss_row.latency.p95Ms);
    j.member("missP99Ms", rc_miss_row.latency.p99Ms);
    j.member("hitP50Ms", rc_hit_row.latency.p50Ms);
    j.member("hitP95Ms", rc_hit_row.latency.p95Ms);
    j.member("hitP99Ms", rc_hit_row.latency.p99Ms);
    j.member("speedupP50", rc_speedup);
    j.member("hits", rc_hits);
    j.member("misses", rc_misses);
    j.member("collapsed", rc_collapsed);
    j.member("insertions", rc_insertions);
    j.endObject();

    j.key("affinityVsRoundRobin").beginObject();
    j.member("affinityHitRate", affinity_rate);
    j.member("roundRobinHitRate", rr_rate);
    j.member("affinityWins", affinity_rate > rr_rate);
    j.endObject();
    j.endObject();
    out << "\n";

    printLatencyTable("cluster latency through the router", rows);
    std::cout << "result cache: hit rate " << rc_hit_rate << " ("
              << cache_phase.hitMs.size() << " hits, "
              << cache_phase.collapsed << " collapsed, "
              << cache_phase.missMs.size()
              << " misses), hit-path p50 speedup " << rc_speedup
              << "x\n";
    std::cout << "affinity hit rate " << affinity_rate
              << " vs round-robin " << rr_rate << "\n";
    std::cout << "Wrote " << json_path << "\n";
    if (affinity_rate <= rr_rate)
        JITSCHED_FATAL("affinity did not beat round-robin");
    return 0;
}
