/**
 * @file
 * Ablation studies the paper motivates but does not plot:
 *
 *  1. K-sweep (Sec. 5.1): the paper states results are stable for
 *     K in [3, 10]; we sweep K in {1, 3, 5, 10, 20}.
 *  2. IAR step ablation: contribution of each of the four steps.
 *  3. Estimation-error robustness (Sec. 8): IAR quality as the
 *     cost-benefit model's estimates degrade (noise sweep) — "if the
 *     scheduling can tolerate a good degree of estimation errors,
 *     building up an estimation model to meet the requirement may be
 *     still feasible."
 */

#include <iostream>
#include <utility>

#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_level.hh"
#include "exec/batch_eval.hh"
#include "sim/makespan.hh"
#include "support/stats.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "vm/adaptive_runtime.hh"
#include "vm/cost_benefit.hh"

using namespace jitsched;

namespace {

const char *kAblationBenchmarks[] = {"antlr", "jython", "luindex"};

/**
 * Normalized make-spans of IAR variants on one workload, evaluated
 * as a single batch on the shared pool.
 */
std::vector<double>
normalizedIarBatch(const Workload &w,
                   const std::vector<CandidatePair> &c,
                   const std::vector<IarConfig> &configs)
{
    const double lb =
        static_cast<double>(lowerBoundCandidates(w, c));
    std::vector<EvalJob> jobs;
    for (const IarConfig &icfg : configs)
        jobs.push_back({&w, iarSchedule(w, c, icfg).schedule, {}});
    std::vector<double> norms;
    for (const SimResult &r : BatchEvaluator::global().evaluate(jobs))
        norms.push_back(static_cast<double>(r.makespan) / lb);
    return norms;
}

void
kSweep(std::size_t scale)
{
    std::cout << "-- K sweep (Formula 2 constant) --\n";
    AsciiTable t({"benchmark", "K=1", "K=3", "K=5", "K=10", "K=20"});
    for (const char *name : kAblationBenchmarks) {
        const Workload w = makeDacapoWorkload(name, scale);
        const auto cands =
            modelCandidateLevels(w, CostBenefitConfig{});
        std::vector<IarConfig> configs;
        for (const double k : {1.0, 3.0, 5.0, 10.0, 20.0}) {
            IarConfig icfg;
            icfg.k = k;
            configs.push_back(icfg);
        }
        std::vector<std::string> row{name};
        for (const double n : normalizedIarBatch(w, cands, configs))
            row.push_back(formatFixed(n, 3));
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "Paper reference: results similar for K in "
                 "[3, 10].\n\n";
}

void
stepAblation(std::size_t scale)
{
    std::cout << "-- IAR step ablation --\n";
    AsciiTable t({"benchmark", "init+classify", "+slack fill",
                  "+gap fill (full IAR)"});
    for (const char *name : kAblationBenchmarks) {
        const Workload w = makeDacapoWorkload(name, scale);
        const auto cands =
            modelCandidateLevels(w, CostBenefitConfig{});

        IarConfig s2;
        s2.fillSlack = false;
        s2.fillEndingGap = false;
        IarConfig s3;
        s3.fillEndingGap = false;

        const std::vector<double> norms =
            normalizedIarBatch(w, cands, {s2, s3, IarConfig{}});
        t.addRow({name, formatFixed(norms[0], 3),
                  formatFixed(norms[1], 3),
                  formatFixed(norms[2], 3)});
    }
    t.print(std::cout);
    std::cout << "Paper reference: steps 3-4 are fine adjustments "
                 "with marginal room left (Sec. 5.1).\n\n";
}

void
noiseSweep(std::size_t scale)
{
    std::cout << "-- estimation-error robustness --\n";
    std::cout << "(log-normal noise of the given sigma multiplies "
                 "every model estimate; candidate levels degrade, "
                 "IAR still works with true times at those levels; "
                 "make-span relative to the noise-free IAR "
                 "schedule)\n";
    AsciiTable t({"benchmark", "sigma=0", "0.2", "0.4", "0.8",
                  "1.6"});
    for (const char *name : kAblationBenchmarks) {
        const Workload w = makeDacapoWorkload(name, scale);
        // One job per noise level, evaluated as one batch.
        std::vector<EvalJob> jobs;
        for (const double sigma : {0.0, 0.2, 0.4, 0.8, 1.6}) {
            CostBenefitConfig mcfg;
            mcfg.noiseSigma = sigma;
            const auto cands = modelCandidateLevels(w, mcfg);
            jobs.push_back({&w, iarSchedule(w, cands).schedule, {}});
        }
        const std::vector<SimResult> sims =
            BatchEvaluator::global().evaluate(jobs);
        const double baseline =
            static_cast<double>(sims[0].makespan);
        std::vector<std::string> row{name, "1.000"};
        for (std::size_t i = 1; i < sims.size(); ++i)
            row.push_back(formatFixed(
                static_cast<double>(sims[i].makespan) / baseline,
                3));
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "Reading: how much slower IAR's result gets as the "
                 "cost-benefit model's estimates degrade.  Moderate "
                 "error costs little — the tolerance Sec. 8 hopes "
                 "an online deployment can rely on.\n";
}

void
variationSweep(std::size_t scale)
{
    std::cout << "-- per-invocation execution-time variation --\n";
    std::cout << "(mean-one log-normal jitter on every call's "
                 "duration; schedules planned on the averages; "
                 "normalized make-span vs the average-based lower "
                 "bound)\n";
    AsciiTable t({"benchmark", "scheme", "sigma=0", "0.3", "0.6",
                  "1.0"});
    for (const char *name : kAblationBenchmarks) {
        const Workload w = makeDacapoWorkload(name, scale);
        const auto cands =
            modelCandidateLevels(w, CostBenefitConfig{});
        const double lb = static_cast<double>(
            lowerBoundCandidates(w, cands));
        const Schedule iar = iarSchedule(w, cands).schedule;
        const Schedule base = baseLevelSchedule(w, cands);

        // 2 schemes x 4 jitter levels = one 8-job batch.
        std::vector<EvalJob> jobs;
        for (const bool use_iar : {true, false})
            for (const double sigma : {0.0, 0.3, 0.6, 1.0}) {
                SimOptions opts;
                opts.execJitterSigma = sigma;
                jobs.push_back({&w, use_iar ? iar : base, opts});
            }
        const std::vector<SimResult> sims =
            BatchEvaluator::global().evaluate(jobs);
        for (const bool use_iar : {true, false}) {
            std::vector<std::string> row{
                use_iar ? name : "",
                use_iar ? "IAR" : "base-only"};
            const std::size_t off = use_iar ? 0 : 4;
            for (std::size_t i = 0; i < 4; ++i)
                row.push_back(formatFixed(
                    static_cast<double>(sims[off + i].makespan) /
                        lb,
                    3));
            t.addRow(row);
        }
    }
    t.print(std::cout);
    std::cout << "Reading: Sec. 8's argument holds — schedules "
                 "planned on average times keep their quality and "
                 "their relative order under per-call variation.\n";
}

void
interpreterSweep(std::size_t scale)
{
    std::cout << "-- interpreter as level 0 (Sec. 8) --\n";
    std::cout << "(lowest level costs zero compile time, like an "
                 "interpreter or V8's non-optimizing tier; the "
                 "analysis and algorithms apply unchanged)\n";
    AsciiTable t({"benchmark", "IAR (jit L0)", "IAR (interp L0)",
                  "default (jit L0)", "default (interp L0)"});
    for (const char *name : kAblationBenchmarks) {
        SyntheticConfig cfg = dacapoConfig(dacapoSpec(name), scale);
        const Workload jit = generateSynthetic(cfg);
        cfg.interpreterLevel0 = true;
        const Workload interp = generateSynthetic(cfg);

        auto norms = [](const Workload &w) {
            CostBenefitConfig mcfg;
            const TimeEstimates est = buildEstimates(w, mcfg);
            const auto cands = modelCandidateLevels(w, mcfg);
            const double lb = static_cast<double>(
                lowerBoundCandidates(w, cands));
            const double iar = static_cast<double>(
                BatchEvaluator::global()
                    .evaluateOne(w, iarSchedule(w, cands).schedule)
                    .makespan);
            AdaptiveConfig acfg;
            acfg.samplePeriod = defaultSamplePeriod(w);
            const double def = static_cast<double>(
                runAdaptive(w, est, acfg).sim.makespan);
            return std::pair<double, double>(iar / lb, def / lb);
        };
        const auto [ji, jd] = norms(jit);
        const auto [ii, id] = norms(interp);
        t.addRow({name, formatFixed(ji, 3), formatFixed(ii, 3),
                  formatFixed(jd, 3), formatFixed(id, 3)});
    }
    t.print(std::cout);
    std::cout << "Reading: with a free lowest tier, first-call "
                 "bubbles vanish but the scheduling problem (when "
                 "to spend the optimizing compiles) remains, and so "
                 "does IAR's advantage over the default scheme.\n";
}

} // anonymous namespace

int
main()
{
    const std::size_t scale = benchScaleFromEnv(16);
    std::cout << "== Ablation studies ==\n\n";
    kSweep(scale);
    stepAblation(scale);
    noiseSweep(scale);
    std::cout << "\n";
    variationSweep(scale);
    std::cout << "\n";
    interpreterSweep(scale);
    return 0;
}
