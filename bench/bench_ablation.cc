/**
 * @file
 * Ablation studies the paper motivates but does not plot:
 *
 *  1. K-sweep (Sec. 5.1): the paper states results are stable for
 *     K in [3, 10]; we sweep K in {1, 3, 5, 10, 20}.
 *  2. IAR step ablation: contribution of each of the four steps.
 *  3. Estimation-error robustness (Sec. 8): IAR quality as the
 *     cost-benefit model's estimates degrade (noise sweep) — "if the
 *     scheduling can tolerate a good degree of estimation errors,
 *     building up an estimation model to meet the requirement may be
 *     still feasible."
 */

#include <iostream>
#include <utility>

#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_level.hh"
#include "sim/makespan.hh"
#include "support/stats.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "vm/adaptive_runtime.hh"
#include "vm/cost_benefit.hh"

using namespace jitsched;

namespace {

const char *kAblationBenchmarks[] = {"antlr", "jython", "luindex"};

double
normalizedIar(const Workload &w, const std::vector<CandidatePair> &c,
              const IarConfig &icfg)
{
    const Tick lb = lowerBoundCandidates(w, c);
    const Tick span =
        simulate(w, iarSchedule(w, c, icfg).schedule).makespan;
    return static_cast<double>(span) / static_cast<double>(lb);
}

void
kSweep(std::size_t scale)
{
    std::cout << "-- K sweep (Formula 2 constant) --\n";
    AsciiTable t({"benchmark", "K=1", "K=3", "K=5", "K=10", "K=20"});
    for (const char *name : kAblationBenchmarks) {
        const Workload w = makeDacapoWorkload(name, scale);
        const auto cands =
            modelCandidateLevels(w, CostBenefitConfig{});
        std::vector<std::string> row{name};
        for (const double k : {1.0, 3.0, 5.0, 10.0, 20.0}) {
            IarConfig icfg;
            icfg.k = k;
            row.push_back(
                formatFixed(normalizedIar(w, cands, icfg), 3));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "Paper reference: results similar for K in "
                 "[3, 10].\n\n";
}

void
stepAblation(std::size_t scale)
{
    std::cout << "-- IAR step ablation --\n";
    AsciiTable t({"benchmark", "init+classify", "+slack fill",
                  "+gap fill (full IAR)"});
    for (const char *name : kAblationBenchmarks) {
        const Workload w = makeDacapoWorkload(name, scale);
        const auto cands =
            modelCandidateLevels(w, CostBenefitConfig{});

        IarConfig s2;
        s2.fillSlack = false;
        s2.fillEndingGap = false;
        IarConfig s3;
        s3.fillEndingGap = false;
        const IarConfig full;

        t.addRow({name, formatFixed(normalizedIar(w, cands, s2), 3),
                  formatFixed(normalizedIar(w, cands, s3), 3),
                  formatFixed(normalizedIar(w, cands, full), 3)});
    }
    t.print(std::cout);
    std::cout << "Paper reference: steps 3-4 are fine adjustments "
                 "with marginal room left (Sec. 5.1).\n\n";
}

void
noiseSweep(std::size_t scale)
{
    std::cout << "-- estimation-error robustness --\n";
    std::cout << "(log-normal noise of the given sigma multiplies "
                 "every model estimate; candidate levels degrade, "
                 "IAR still works with true times at those levels; "
                 "make-span relative to the noise-free IAR "
                 "schedule)\n";
    AsciiTable t({"benchmark", "sigma=0", "0.2", "0.4", "0.8",
                  "1.6"});
    for (const char *name : kAblationBenchmarks) {
        const Workload w = makeDacapoWorkload(name, scale);
        double baseline = 0.0;
        std::vector<std::string> row{name};
        for (const double sigma : {0.0, 0.2, 0.4, 0.8, 1.6}) {
            CostBenefitConfig mcfg;
            mcfg.noiseSigma = sigma;
            const auto cands = modelCandidateLevels(w, mcfg);
            const double span = static_cast<double>(
                simulate(w, iarSchedule(w, cands).schedule)
                    .makespan);
            if (sigma == 0.0) {
                baseline = span;
                row.push_back("1.000");
            } else {
                row.push_back(formatFixed(span / baseline, 3));
            }
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "Reading: how much slower IAR's result gets as the "
                 "cost-benefit model's estimates degrade.  Moderate "
                 "error costs little — the tolerance Sec. 8 hopes "
                 "an online deployment can rely on.\n";
}

void
variationSweep(std::size_t scale)
{
    std::cout << "-- per-invocation execution-time variation --\n";
    std::cout << "(mean-one log-normal jitter on every call's "
                 "duration; schedules planned on the averages; "
                 "normalized make-span vs the average-based lower "
                 "bound)\n";
    AsciiTable t({"benchmark", "scheme", "sigma=0", "0.3", "0.6",
                  "1.0"});
    for (const char *name : kAblationBenchmarks) {
        const Workload w = makeDacapoWorkload(name, scale);
        const auto cands =
            modelCandidateLevels(w, CostBenefitConfig{});
        const double lb = static_cast<double>(
            lowerBoundCandidates(w, cands));
        const Schedule iar = iarSchedule(w, cands).schedule;
        const Schedule base = baseLevelSchedule(w, cands);

        for (const bool use_iar : {true, false}) {
            std::vector<std::string> row{
                use_iar ? name : "",
                use_iar ? "IAR" : "base-only"};
            for (const double sigma : {0.0, 0.3, 0.6, 1.0}) {
                SimOptions opts;
                opts.execJitterSigma = sigma;
                const double span = static_cast<double>(
                    simulate(w, use_iar ? iar : base, opts)
                        .makespan);
                row.push_back(formatFixed(span / lb, 3));
            }
            t.addRow(row);
        }
    }
    t.print(std::cout);
    std::cout << "Reading: Sec. 8's argument holds — schedules "
                 "planned on average times keep their quality and "
                 "their relative order under per-call variation.\n";
}

void
interpreterSweep(std::size_t scale)
{
    std::cout << "-- interpreter as level 0 (Sec. 8) --\n";
    std::cout << "(lowest level costs zero compile time, like an "
                 "interpreter or V8's non-optimizing tier; the "
                 "analysis and algorithms apply unchanged)\n";
    AsciiTable t({"benchmark", "IAR (jit L0)", "IAR (interp L0)",
                  "default (jit L0)", "default (interp L0)"});
    for (const char *name : kAblationBenchmarks) {
        SyntheticConfig cfg = dacapoConfig(dacapoSpec(name), scale);
        const Workload jit = generateSynthetic(cfg);
        cfg.interpreterLevel0 = true;
        const Workload interp = generateSynthetic(cfg);

        auto norms = [](const Workload &w) {
            CostBenefitConfig mcfg;
            const TimeEstimates est = buildEstimates(w, mcfg);
            const auto cands = modelCandidateLevels(w, mcfg);
            const double lb = static_cast<double>(
                lowerBoundCandidates(w, cands));
            const double iar = static_cast<double>(
                simulate(w, iarSchedule(w, cands).schedule)
                    .makespan);
            AdaptiveConfig acfg;
            acfg.samplePeriod = defaultSamplePeriod(w);
            const double def = static_cast<double>(
                runAdaptive(w, est, acfg).sim.makespan);
            return std::pair<double, double>(iar / lb, def / lb);
        };
        const auto [ji, jd] = norms(jit);
        const auto [ii, id] = norms(interp);
        t.addRow({name, formatFixed(ji, 3), formatFixed(ii, 3),
                  formatFixed(jd, 3), formatFixed(id, 3)});
    }
    t.print(std::cout);
    std::cout << "Reading: with a free lowest tier, first-call "
                 "bubbles vanish but the scheduling problem (when "
                 "to spend the optimizing compiles) remains, and so "
                 "does IAR's advantage over the default scheme.\n";
}

} // anonymous namespace

int
main()
{
    const std::size_t scale = benchScaleFromEnv(16);
    std::cout << "== Ablation studies ==\n\n";
    kSweep(scale);
    stepAblation(scale);
    noiseSweep(scale);
    std::cout << "\n";
    variationSweep(scale);
    std::cout << "\n";
    interpreterSweep(scale);
    return 0;
}
