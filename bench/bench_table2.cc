/**
 * @file
 * Reproduces Table 2: the wall-clock running time of the IAR
 * algorithm itself on every benchmark, and that time as a
 * percentage of the (full-scale) program execution time.
 *
 * Paper shape to match: IAR runs in milliseconds (6-108 ms on their
 * traces) — under ~1% of program time for most benchmarks — so it
 * is cheap enough for online use.
 */

#include <chrono>
#include <iostream>

#include "core/iar.hh"
#include "sim/makespan.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "vm/cost_benefit.hh"

using namespace jitsched;

int
main()
{
    const std::size_t scale = benchScaleFromEnv(16);
    std::cout << "== Table 2: IAR algorithm time ==\n";
    std::cout << "(traces at 1/" << scale
              << " scale; percentage vs full-scale program time)\n";

    AsciiTable t({"program", "IAR time (s)",
                  "% of program time", "paper IAR time (s)"});

    const double paper_times[] = {0.006, 0.023, 0.001, 0.003, 0.020,
                                  0.059, 0.051, 0.108, 0.031};
    std::size_t idx = 0;
    for (const DacapoSpec &spec : dacapoSpecs()) {
        const Workload w = makeDacapoWorkload(spec.name, scale);
        CostBenefitConfig mcfg;
        const auto cands = modelCandidateLevels(w, mcfg);

        // Median of several timed runs for stability.
        double best_seconds = 1e30;
        Schedule schedule;
        for (int rep = 0; rep < 5; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            IarResult res = iarSchedule(w, cands);
            const auto t1 = std::chrono::steady_clock::now();
            const double secs =
                std::chrono::duration<double>(t1 - t0).count();
            if (secs < best_seconds) {
                best_seconds = secs;
                schedule = std::move(res.schedule);
            }
        }

        // Program time: the IAR-scheduled make-span, extrapolated to
        // the full-length trace.
        const double program_seconds =
            toSeconds(simulate(w, schedule).makespan) *
            (static_cast<double>(spec.numCalls) /
             static_cast<double>(w.numCalls()));
        const double pct = 100.0 * best_seconds / program_seconds;

        t.addRow({spec.name, strprintf("%.4f", best_seconds),
                  strprintf("%.2f%%", pct),
                  strprintf("%.3f", paper_times[idx++])});
    }
    t.print(std::cout);
    std::cout << "Paper reference: 0.001-0.108 s per trace, under "
                 "1% of program time for most programs (3.4% worst) "
                 "— affordable online.\n";
    return 0;
}
