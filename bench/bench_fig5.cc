/**
 * @file
 * Reproduces Fig. 5: normalized make-span under the default Jikes
 * cost-benefit model — lower bound, IAR, the default adaptive
 * scheme, and both single-level approximations, on all nine
 * Table-1 workloads.
 *
 * Paper shape to match: IAR within 17% of the lower bound on every
 * program (8.5% average); the default scheme's average gap above
 * 70%; the single-level schemes generally no better than the
 * default.
 */

#include <iostream>

#include "harness.hh"
#include "trace/dacapo.hh"

using namespace jitsched;

int
main()
{
    const std::size_t scale = benchScaleFromEnv(16);
    std::vector<FigureRow> rows;
    for (const DacapoSpec &spec : dacapoSpecs())
        rows.push_back(runFigureRow(
            makeDacapoWorkload(spec.name, scale),
            ModelKind::Default));
    printFigure("Figure 5: default cost-benefit model", rows);
    std::cout << "Paper reference: IAR gap 8.5% avg (max 17%); "
                 "default gap >70% avg; speedup potential ~1.6x.\n";
    return 0;
}
