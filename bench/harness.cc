#include "harness.hh"

#include <iostream>

#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_level.hh"
#include "exec/batch_eval.hh"
#include "sim/makespan.hh"
#include "support/stats.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "vm/adaptive_runtime.hh"

namespace jitsched {

FigureRow
runFigureRow(const Workload &w, ModelKind model)
{
    FigureRow row;
    row.benchmark = w.name();

    CostBenefitConfig mcfg;
    mcfg.kind = model;
    const TimeEstimates est = buildEstimates(w, mcfg);
    const std::vector<CandidatePair> cands =
        modelCandidateLevels(w, mcfg);

    row.lowerBound = lowerBoundCandidates(w, cands);

    // The three static schedules are independent make-span jobs;
    // evaluate them as one batch on the shared pool + cache.
    const std::vector<SimResult> sims =
        BatchEvaluator::global().evaluate(
            {{&w, iarSchedule(w, cands).schedule, {}},
             {&w, baseLevelSchedule(w, cands), {}},
             {&w, optimizingLevelSchedule(w, cands), {}}});
    row.iar = sims[0].makespan;
    row.baseOnly = sims[1].makespan;
    row.optOnly = sims[2].makespan;

    // The adaptive runtime is an online policy — it discovers its
    // compilations as execution progresses — so it stays on the
    // sequential path.
    AdaptiveConfig acfg;
    acfg.samplePeriod = defaultSamplePeriod(w);
    row.defaultScheme = runAdaptive(w, est, acfg).sim.makespan;
    return row;
}

void
printFigure(const std::string &title,
            const std::vector<FigureRow> &rows)
{
    std::cout << "== " << title << " ==\n";
    std::cout << "(normalized make-span; baseline = lower bound; "
                 "lower is better)\n";
    AsciiTable table({"benchmark", "lower-bound", "IAR", "default",
                      "base-only", "opt-only"});
    std::vector<double> iar, def, base, opt;
    for (const FigureRow &r : rows) {
        table.addRow({r.benchmark, "1.00",
                      formatFixed(r.norm(r.iar), 2),
                      formatFixed(r.norm(r.defaultScheme), 2),
                      formatFixed(r.norm(r.baseOnly), 2),
                      formatFixed(r.norm(r.optOnly), 2)});
        iar.push_back(r.norm(r.iar));
        def.push_back(r.norm(r.defaultScheme));
        base.push_back(r.norm(r.baseOnly));
        opt.push_back(r.norm(r.optOnly));
    }
    table.addSeparator();
    table.addRow({"average", "1.00", formatFixed(mean(iar), 2),
                  formatFixed(mean(def), 2),
                  formatFixed(mean(base), 2),
                  formatFixed(mean(opt), 2)});
    table.print(std::cout);
    std::cout << "IAR gap from lower bound: "
              << formatFixed((mean(iar) - 1.0) * 100.0, 1)
              << "%  |  default gap: "
              << formatFixed((mean(def) - 1.0) * 100.0, 1)
              << "%  |  default/IAR speedup potential: "
              << formatFixed(mean(def) / mean(iar), 2) << "x\n\n";
}

LatencySummary
summarizeLatencies(std::vector<double> samples_ms)
{
    LatencySummary s;
    s.count = samples_ms.size();
    if (samples_ms.empty())
        return s;
    Summary acc;
    for (const double x : samples_ms)
        acc.add(x);
    s.minMs = acc.min();
    s.meanMs = acc.mean();
    s.maxMs = acc.max();
    s.p50Ms = percentile(samples_ms, 50.0);
    s.p95Ms = percentile(samples_ms, 95.0);
    s.p99Ms = percentile(samples_ms, 99.0);
    return s;
}

void
printLatencyTable(const std::string &title,
                  const std::vector<LatencyRow> &rows)
{
    std::cout << "== " << title << " ==\n";
    std::cout << "(latencies in ms; p50/p95/p99 by linear "
                 "interpolation)\n";
    AsciiTable table({"case", "n", "min", "mean", "p50", "p95",
                      "p99", "max", "req/s"});
    for (const LatencyRow &r : rows) {
        const LatencySummary &l = r.latency;
        table.addRow({r.label, std::to_string(l.count),
                      formatFixed(l.minMs, 3),
                      formatFixed(l.meanMs, 3),
                      formatFixed(l.p50Ms, 3),
                      formatFixed(l.p95Ms, 3),
                      formatFixed(l.p99Ms, 3),
                      formatFixed(l.maxMs, 3),
                      r.throughputPerSec > 0.0
                          ? formatFixed(r.throughputPerSec, 1)
                          : "-"});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace jitsched
