#include "harness.hh"

#include <cassert>
#include <iostream>

#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_level.hh"
#include "exec/batch_eval.hh"
#include "sim/makespan.hh"
#include "support/stats.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "vm/adaptive_runtime.hh"

namespace jitsched {

FigureRow
runFigureRow(const Workload &w, ModelKind model)
{
    FigureRow row;
    row.benchmark = w.name();

    CostBenefitConfig mcfg;
    mcfg.kind = model;
    const TimeEstimates est = buildEstimates(w, mcfg);
    const std::vector<CandidatePair> cands =
        modelCandidateLevels(w, mcfg);

    row.lowerBound = lowerBoundCandidates(w, cands);

    // The three static schedules are independent make-span jobs;
    // evaluate them as one batch on the shared pool + cache.
    const std::vector<SimResult> sims =
        BatchEvaluator::global().evaluate(
            {{&w, iarSchedule(w, cands).schedule, {}},
             {&w, baseLevelSchedule(w, cands), {}},
             {&w, optimizingLevelSchedule(w, cands), {}}});
    row.iar = sims[0].makespan;
    row.baseOnly = sims[1].makespan;
    row.optOnly = sims[2].makespan;

    // The adaptive runtime is an online policy — it discovers its
    // compilations as execution progresses — so it stays on the
    // sequential path.
    AdaptiveConfig acfg;
    acfg.samplePeriod = defaultSamplePeriod(w);
    row.defaultScheme = runAdaptive(w, est, acfg).sim.makespan;
    return row;
}

void
printFigure(const std::string &title,
            const std::vector<FigureRow> &rows)
{
    std::cout << "== " << title << " ==\n";
    std::cout << "(normalized make-span; baseline = lower bound; "
                 "lower is better)\n";
    AsciiTable table({"benchmark", "lower-bound", "IAR", "default",
                      "base-only", "opt-only"});
    std::vector<double> iar, def, base, opt;
    for (const FigureRow &r : rows) {
        table.addRow({r.benchmark, "1.00",
                      formatFixed(r.norm(r.iar), 2),
                      formatFixed(r.norm(r.defaultScheme), 2),
                      formatFixed(r.norm(r.baseOnly), 2),
                      formatFixed(r.norm(r.optOnly), 2)});
        iar.push_back(r.norm(r.iar));
        def.push_back(r.norm(r.defaultScheme));
        base.push_back(r.norm(r.baseOnly));
        opt.push_back(r.norm(r.optOnly));
    }
    table.addSeparator();
    table.addRow({"average", "1.00", formatFixed(mean(iar), 2),
                  formatFixed(mean(def), 2),
                  formatFixed(mean(base), 2),
                  formatFixed(mean(opt), 2)});
    table.print(std::cout);
    std::cout << "IAR gap from lower bound: "
              << formatFixed((mean(iar) - 1.0) * 100.0, 1)
              << "%  |  default gap: "
              << formatFixed((mean(def) - 1.0) * 100.0, 1)
              << "%  |  default/IAR speedup potential: "
              << formatFixed(mean(def) / mean(iar), 2) << "x\n\n";
}

LatencySummary
summarizeLatencies(std::vector<double> samples_ms)
{
    LatencySummary s;
    s.count = samples_ms.size();
    if (samples_ms.empty())
        return s;
    Summary acc;
    for (const double x : samples_ms)
        acc.add(x);
    s.minMs = acc.min();
    s.meanMs = acc.mean();
    s.maxMs = acc.max();
    s.p50Ms = percentile(samples_ms, 50.0);
    s.p95Ms = percentile(samples_ms, 95.0);
    s.p99Ms = percentile(samples_ms, 99.0);
    return s;
}

void
printLatencyTable(const std::string &title,
                  const std::vector<LatencyRow> &rows)
{
    std::cout << "== " << title << " ==\n";
    std::cout << "(latencies in ms; p50/p95/p99 by linear "
                 "interpolation)\n";
    AsciiTable table({"case", "n", "min", "mean", "p50", "p95",
                      "p99", "max", "req/s"});
    for (const LatencyRow &r : rows) {
        const LatencySummary &l = r.latency;
        table.addRow({r.label, std::to_string(l.count),
                      formatFixed(l.minMs, 3),
                      formatFixed(l.meanMs, 3),
                      formatFixed(l.p50Ms, 3),
                      formatFixed(l.p95Ms, 3),
                      formatFixed(l.p99Ms, 3),
                      formatFixed(l.maxMs, 3),
                      r.throughputPerSec > 0.0
                          ? formatFixed(r.throughputPerSec, 1)
                          : "-"});
    }
    table.print(std::cout);
    std::cout << "\n";
}

void
JsonWriter::separate()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (!first_.empty()) {
        if (!first_.back())
            os_ << ",";
        first_.back() = false;
        os_ << "\n" << std::string(first_.size() * 2, ' ');
    }
}

void
JsonWriter::escaped(const std::string &s)
{
    os_ << '"';
    for (const char c : s) {
        switch (c) {
        case '"':
            os_ << "\\\"";
            break;
        case '\\':
            os_ << "\\\\";
            break;
        case '\n':
            os_ << "\\n";
            break;
        case '\t':
            os_ << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                os_ << strprintf("\\u%04x", c);
            else
                os_ << c;
        }
    }
    os_ << '"';
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    os_ << "{";
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    assert(!first_.empty() && !after_key_);
    const bool empty = first_.back();
    first_.pop_back();
    if (!empty)
        os_ << "\n" << std::string(first_.size() * 2, ' ');
    os_ << "}";
    if (first_.empty())
        os_ << "\n";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    os_ << "[";
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    assert(!first_.empty() && !after_key_);
    const bool empty = first_.back();
    first_.pop_back();
    if (!empty)
        os_ << "\n" << std::string(first_.size() * 2, ' ');
    os_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    assert(!after_key_);
    separate();
    escaped(name);
    os_ << ": ";
    after_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    escaped(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    os_ << strprintf("%.9g", v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
    return *this;
}

} // namespace jitsched
