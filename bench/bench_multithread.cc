/**
 * @file
 * Beyond the paper: the unmerged view of the multithreaded
 * benchmarks (hsqldb, lusearch).
 *
 * The paper merges the threads' calls into one sequence because
 * "the threads typically share the same native code base" (Sec.
 * 6.1).  Here we split the merged trace back into execution threads
 * sharing one code cache, schedule on the merged sequence exactly as
 * the paper does, and check that the headline comparison — IAR far
 * ahead of the single-level schemes — survives when the threads run
 * concurrently.
 */

#include <iostream>

#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_level.hh"
#include "sim/multithread.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "vm/cost_benefit.hh"

using namespace jitsched;

int
main()
{
    const std::size_t scale = benchScaleFromEnv(16);
    std::cout << "== Multithreaded execution (beyond the paper) =="
              << "\n(schedules built on the merged trace, as in the "
                 "paper; executed on 1/2/4 threads sharing the code "
                 "cache; per-cell: IAR / base-only make-span, "
                 "normalized to the 1-thread lower bound over "
                 "thread count)\n";

    AsciiTable t({"benchmark", "threads", "IAR", "base-only",
                  "IAR advantage"});
    for (const char *name : {"hsqldb", "lusearch"}) {
        const Workload w = makeDacapoWorkload(name, scale);
        const auto cands =
            modelCandidateLevels(w, CostBenefitConfig{});
        const Schedule iar = iarSchedule(w, cands).schedule;
        const Schedule base = baseLevelSchedule(w, cands);
        const Tick lb = lowerBoundCandidates(w, cands);

        for (const std::size_t threads : {1u, 2u, 4u}) {
            Rng rng(1234 + threads);
            const auto split = splitTrace(w.calls(), threads, rng);
            const double iar_span = static_cast<double>(
                simulateMt(w, split, iar).makespan);
            const double base_span = static_cast<double>(
                simulateMt(w, split, base).makespan);
            // An ideal T-thread run divides the execution bound.
            const double bound =
                static_cast<double>(lb) /
                static_cast<double>(threads);
            t.addRow({threads == 1 ? name : "",
                      std::to_string(threads),
                      formatFixed(iar_span / bound, 2),
                      formatFixed(base_span / bound, 2),
                      formatFixed(base_span / iar_span, 2) + "x"});
        }
    }
    t.print(std::cout);
    std::cout << "Reading: the shared code cache lets one compile "
                 "serve every thread, so the merged-trace schedule "
                 "keeps its advantage as threads are added — the "
                 "paper's merging methodology is sound for the "
                 "comparisons it makes.\n";
    return 0;
}
