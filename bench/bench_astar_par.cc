/**
 * @file
 * Measures the parallel anytime A* (core/astar_par.hh) against the
 * sequential search the paper's Sec. 6.2.5 experiment uses.
 *
 * Part 1 isolates the *algorithmic* gain: seeding the search with the
 * IAR schedule's make-span as an incumbent upper bound and pruning
 * every node with f >= incumbent at generation.  Both searches are
 * sequential and find the identical optimum; the expanded-node ratio
 * is therefore pure pruning power.  Target: >= 2x fewer expansions on
 * instances with at least 5 unique functions.
 *
 * Part 2 measures the *mechanical* gain: hash-distributed expansion
 * at 1/2/4/8 workers on one instance, wall-clock speedup over the
 * sequential search.  The table reports whatever the host delivers —
 * on a single-core container the sharded search cannot go faster than
 * sequential (there is one execution unit; extra workers only add
 * routing overhead), and the artifact records the detected core count
 * so downstream readers can interpret the numbers.
 *
 * Part 3 pushes instance size until the search stops returning
 * Optimal under a fixed memory budget — the parallel analogue of the
 * paper's "out of memory beyond 6 functions" wall.  Because the
 * parallel search is anytime, the failure mode is a *bounded-gap
 * incumbent*, not a refusal; the table shows the gap growing as the
 * wall is passed.
 *
 * Everything lands in BENCH_astar_par.json.  `--smoke` prints only
 * deterministic counters (single-worker runs plus cost-agreement
 * flags), which scripts/check.sh --par-smoke diffs against
 * bench/expectations/astar_par_smoke.txt.  `--trace-out FILE` emits
 * the incumbent trail of one anytime run as a Chrome trace.
 */

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

#include "core/astar.hh"
#include "core/astar_par.hh"
#include "harness.hh"
#include "obs/trace_event.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/synthetic.hh"

using namespace jitsched;

namespace {

Workload
parWorkload(std::size_t funcs, std::size_t levels = 2)
{
    // Same family as bench_astar's feasibility instances, so the two
    // artifacts describe the same search space.  Part 3 uses 3-level
    // variants: with the incumbent bound, 2-level instances stay
    // tractable far past the paper's wall, while the 3-level state
    // space still crosses it within the budget.
    SyntheticConfig cfg;
    cfg.numFunctions = funcs;
    cfg.numCalls = 50 + funcs * 2;
    cfg.numLevels = levels;
    cfg.seed = 40 + funcs;
    return generateSynthetic(cfg);
}

const char *
statusName(AStarStatus s)
{
    switch (s) {
    case AStarStatus::Optimal:
        return "optimal";
    case AStarStatus::Incumbent:
        return "incumbent";
    case AStarStatus::OutOfMemory:
        return "out-of-memory";
    case AStarStatus::ExpansionCap:
        return "expansion-cap";
    }
    return "?";
}

const char *
stopName(AStarStop s)
{
    switch (s) {
    case AStarStop::None:
        return "none";
    case AStarStop::Deadline:
        return "deadline";
    case AStarStop::Memory:
        return "memory";
    case AStarStop::Expansions:
        return "expansions";
    }
    return "?";
}

struct TimedRun
{
    AStarResult res;
    double seconds = 0.0;
};

TimedRun
timedSeq(const Workload &w, const AStarConfig &cfg)
{
    TimedRun run;
    const auto t0 = std::chrono::steady_clock::now();
    run.res = aStarOptimal(w, cfg);
    run.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return run;
}

TimedRun
timedPar(const Workload &w, const AStarConfig &cfg)
{
    TimedRun run;
    const auto t0 = std::chrono::steady_clock::now();
    run.res = aStarParallel(w, cfg);
    run.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return run;
}

/** Part 1 row: sequential search, pruning off vs. on. */
struct PruneRow
{
    std::size_t funcs = 0;
    AStarResult plain;
    AStarResult pruned;

    static double
    ratio(std::uint64_t a, std::uint64_t b)
    {
        return b > 0 ? static_cast<double>(a) /
                           static_cast<double>(b)
                     : 0.0;
    }

    double
    expandedReduction() const
    {
        return ratio(plain.nodesExpanded, pruned.nodesExpanded);
    }

    double
    storedReduction() const
    {
        return ratio(plain.nodesGenerated, pruned.nodesGenerated);
    }

    double
    memoryReduction() const
    {
        return ratio(plain.peakMemory, pruned.peakMemory);
    }
};

/** Part 2 row: one worker count's timed run. */
struct ScaleRow
{
    std::size_t threads = 0;
    TimedRun run;
};

/** Part 3 row: the size wall. */
struct SizeRow
{
    std::size_t funcs = 0;
    TimedRun run;
};

int
runSmoke()
{
    // Deterministic by construction: sequential searches and
    // single-worker parallel searches have a fixed expansion order;
    // multi-worker runs contribute only their cost, which the
    // determinism contract fixes (bit-identical to sequential).
    std::cout << "astar-par-smoke v1\n";
    for (const std::size_t funcs : {5, 6}) {
        const Workload w = parWorkload(funcs);

        AStarConfig seq_cfg;
        seq_cfg.memoryBudget = 256ull << 20;
        const AStarResult plain = aStarOptimal(w, seq_cfg);

        AStarConfig pruned_cfg = seq_cfg;
        pruned_cfg.incumbentPruning = true;
        const AStarResult pruned = aStarOptimal(w, pruned_cfg);

        AStarConfig par_cfg;
        par_cfg.memoryBudget = 256ull << 20;
        par_cfg.threads = 1;
        const AStarResult par = aStarParallel(w, par_cfg);

        std::cout << "workload functions=" << funcs
                  << " calls=" << w.numCalls() << "\n";
        std::cout << "  seq_makespan=" << plain.makespan
                  << " seq_expanded=" << plain.nodesExpanded << "\n";
        std::cout << "  pruned_makespan=" << pruned.makespan
                  << " pruned_expanded=" << pruned.nodesExpanded
                  << " pruned_incumbent_cuts="
                  << pruned.nodesPrunedIncumbent << "\n";
        std::cout << "  par1_status=" << statusName(par.status)
                  << " par1_makespan=" << par.makespan
                  << " par1_expanded=" << par.nodesExpanded
                  << " par1_pruned_incumbent="
                  << par.nodesPrunedIncumbent << "\n";

        bool agree = plain.makespan == pruned.makespan &&
                     plain.makespan == par.makespan;
        for (const std::size_t threads : {2u, 8u}) {
            AStarConfig cfg = par_cfg;
            cfg.threads = threads;
            const AStarResult r = aStarParallel(w, cfg);
            agree = agree && r.status == AStarStatus::Optimal &&
                    r.makespan == plain.makespan;
        }
        std::cout << "  all_modes_agree=" << (agree ? "yes" : "NO")
                  << "\n";
    }
    return 0;
}

int
runTrace(const char *path)
{
    // One anytime run under a tight deadline, its incumbent trail as
    // a Chrome trace: each improvement is a slice from the moment it
    // was installed until the next one replaced it.
    const Workload w = parWorkload(12);
    AStarConfig cfg;
    cfg.threads = 2;
    cfg.anytimeDeadlineMs = 200;
    cfg.memoryBudget = 512ull << 20;
    const AStarResult res = aStarParallel(w, cfg);

    obs::TraceEventSink sink;
    sink.processName(1, "astar-par incumbent trail");
    sink.threadName(1, 1, "incumbent");
    for (std::size_t i = 0; i < res.incumbentTrail.size(); ++i) {
        const auto &e = res.incumbentTrail[i];
        const Tick ts = static_cast<Tick>(e.seconds * 1e9);
        const Tick end =
            i + 1 < res.incumbentTrail.size()
                ? static_cast<Tick>(
                      res.incumbentTrail[i + 1].seconds * 1e9)
                : ts + 1;
        sink.slice("makespan=" + std::to_string(e.makespan),
                   "incumbent", 1, 1, ts,
                   end > ts ? end - ts : 1,
                   {{"makespan", std::to_string(e.makespan)},
                    {"worker", std::to_string(e.worker)}});
    }
    sink.writeFile(path);
    std::cout << "status=" << statusName(res.status)
              << " makespan=" << res.makespan
              << " gap_bound=" << res.gapBound
              << " improvements=" << res.incumbentTrail.size()
              << "\nWrote " << path << "\n";
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0)
        return runSmoke();
    if (argc > 2 && std::strcmp(argv[1], "--trace-out") == 0)
        return runTrace(argv[2]);

    const unsigned cores = std::thread::hardware_concurrency();

    // ---- Part 1: what incumbent pruning alone buys. ----
    std::cout << "== IAR incumbent pruning (sequential A*, same "
                 "optimum) ==\n";
    AsciiTable pt({"#functions", "plain expanded", "pruned expanded",
                   "exp. red.", "plain stored", "pruned stored",
                   "stored red.", "peak-mem red.",
                   "makespan equal"});
    std::vector<PruneRow> prows;
    double exp_log_sum = 0.0;
    double stored_log_sum = 0.0;
    double mem_log_sum = 0.0;
    for (std::size_t funcs = 5; funcs <= 8; ++funcs) {
        const Workload w = parWorkload(funcs);
        AStarConfig base;
        base.memoryBudget = 512ull << 20;
        base.maxExpansions = 2'000'000;
        AStarConfig inc = base;
        inc.incumbentPruning = true;

        PruneRow row;
        row.funcs = funcs;
        row.plain = aStarOptimal(w, base);
        row.pruned = aStarOptimal(w, inc);
        pt.addRow({std::to_string(funcs),
                   formatCount(row.plain.nodesExpanded),
                   formatCount(row.pruned.nodesExpanded),
                   strprintf("%.1fx", row.expandedReduction()),
                   formatCount(row.plain.nodesGenerated),
                   formatCount(row.pruned.nodesGenerated),
                   strprintf("%.1fx", row.storedReduction()),
                   strprintf("%.1fx", row.memoryReduction()),
                   row.plain.makespan == row.pruned.makespan
                       ? "yes"
                       : "NO"});
        exp_log_sum += std::log(row.expandedReduction());
        stored_log_sum += std::log(row.storedReduction());
        mem_log_sum += std::log(row.memoryReduction());
        prows.push_back(std::move(row));
    }
    const double n_rows = static_cast<double>(prows.size());
    const double exp_geomean = std::exp(exp_log_sum / n_rows);
    const double stored_geomean = std::exp(stored_log_sum / n_rows);
    const double mem_geomean = std::exp(mem_log_sum / n_rows);
    pt.print(std::cout);
    std::cout << strprintf(
        "Geometric means: expanded %.1fx, stored %.1fx, peak "
        "memory %.1fx.\n",
        exp_geomean, stored_geomean, mem_geomean);
    std::cout << "The expanded set barely moves: with an admissible "
                 "heuristic A* must expand every node with "
                 "f < optimum, and the strengthened heuristic makes "
                 "that set nearly minimal already.  What the "
                 "incumbent bound cuts is the *stored frontier* — "
                 "nodes that would be generated, evaluated and "
                 "queued only to die with f >= optimum — which is "
                 "exactly where the paper's search ran out of "
                 "memory.  Stored-node target: "
              << (stored_geomean >= 2.0 ? ">= 2x met"
                                        : "below 2x!")
              << ".\n\n";

    // ---- Part 2: worker scaling. ----
    std::cout << "== Hash-distributed expansion: scaling at "
                 "1/2/4/8 workers (detected cores: "
              << cores << ") ==\n";
    const Workload scale_w = parWorkload(11);
    AStarConfig seq_cfg;
    seq_cfg.memoryBudget = 512ull << 20;
    const TimedRun seq = timedSeq(scale_w, seq_cfg);

    AsciiTable st({"workers", "status", "seconds", "expanded",
                   "routed", "max inbox", "vs seq", "vs 1 worker"});
    st.addRow({"seq", statusName(seq.res.status),
               strprintf("%.3f", seq.seconds),
               formatCount(seq.res.nodesExpanded), "-", "-", "1.0x",
               "-"});
    std::vector<ScaleRow> srows;
    double one_worker_seconds = 0.0;
    double speedup8 = 0.0;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        AStarConfig cfg;
        cfg.memoryBudget = 512ull << 20;
        cfg.threads = threads;
        ScaleRow row;
        row.threads = threads;
        row.run = timedPar(scale_w, cfg);
        if (threads == 1)
            one_worker_seconds = row.run.seconds;
        const double vs_seq =
            row.run.seconds > 0.0 ? seq.seconds / row.run.seconds
                                  : 0.0;
        const double vs_one =
            row.run.seconds > 0.0
                ? one_worker_seconds / row.run.seconds
                : 0.0;
        if (threads == 8)
            speedup8 = vs_one;
        st.addRow({std::to_string(threads),
                   statusName(row.run.res.status),
                   strprintf("%.3f", row.run.seconds),
                   formatCount(row.run.res.nodesExpanded),
                   formatCount(row.run.res.nodesRouted),
                   formatCount(row.run.res.maxInboxDepth),
                   strprintf("%.1fx", vs_seq),
                   strprintf("%.1fx", vs_one)});
        srows.push_back(std::move(row));
    }
    st.print(std::cout);
    std::cout << "\"vs seq\" mixes incumbent pruning (always on in "
                 "the parallel search) with parallelism; \"vs 1 "
                 "worker\" isolates the scaling of the sharded "
                 "expansion itself.  On a host with fewer cores "
                 "than workers no wall-clock scaling is physically "
                 "possible — the detected core count above is the "
                 "ceiling.\n\n";

    // ---- Part 3: the size wall, anytime edition. ----
    std::cout << "== Max solvable size (3-level instances, 512 MiB "
                 "budget, 5 s deadline, 4 workers) ==\n";
    AsciiTable wt({"#functions", "status", "stop", "makespan",
                   "gap bound", "expanded", "peak memory"});
    std::vector<SizeRow> wrows;
    std::size_t max_optimal = 0;
    for (std::size_t funcs = 8; funcs <= 14; ++funcs) {
        const Workload w = parWorkload(funcs, 3);
        AStarConfig cfg;
        cfg.memoryBudget = 512ull << 20;
        cfg.anytimeDeadlineMs = 5000;
        cfg.threads = 4;
        SizeRow row;
        row.funcs = funcs;
        row.run = timedPar(w, cfg);
        if (row.run.res.status == AStarStatus::Optimal)
            max_optimal = funcs;
        wt.addRow({std::to_string(funcs),
                   statusName(row.run.res.status),
                   stopName(row.run.res.stopCause),
                   std::to_string(row.run.res.makespan),
                   std::to_string(row.run.res.gapBound),
                   formatCount(row.run.res.nodesExpanded),
                   strprintf("%.1f MiB",
                             static_cast<double>(
                                 row.run.res.peakMemory) /
                                 (1 << 20))});
        wrows.push_back(std::move(row));
    }
    wt.print(std::cout);
    std::cout << "Past the wall the anytime search degrades to a "
                 "bounded-gap incumbent instead of refusing — the "
                 "IAR seed guarantees a valid schedule at any "
                 "budget.\n";

    // ---- Machine-readable artifact. ----
    const char *json_path = "BENCH_astar_par.json";
    std::ofstream out(json_path);
    JsonWriter j(out);
    j.beginObject();
    j.member("bench", "astar_par");
    j.member("hardware_cores", static_cast<std::uint64_t>(cores));
    j.key("incumbent_pruning").beginArray();
    for (const PruneRow &r : prows) {
        j.beginObject();
        j.member("functions", static_cast<std::uint64_t>(r.funcs));
        j.member("plain_expanded", r.plain.nodesExpanded);
        j.member("pruned_expanded", r.pruned.nodesExpanded);
        j.member("plain_stored", r.plain.nodesGenerated);
        j.member("pruned_stored", r.pruned.nodesGenerated);
        j.member("pruned_incumbent_cuts",
                 r.pruned.nodesPrunedIncumbent);
        j.member("expanded_reduction", r.expandedReduction());
        j.member("stored_reduction", r.storedReduction());
        j.member("peak_memory_reduction", r.memoryReduction());
        j.member("makespan_equal",
                 r.plain.makespan == r.pruned.makespan);
        j.endObject();
    }
    j.endArray();
    j.member("expanded_reduction_geomean", exp_geomean);
    j.member("stored_reduction_geomean", stored_geomean);
    j.member("peak_memory_reduction_geomean", mem_geomean);
    j.member("meets_2x_target_expanded", exp_geomean >= 2.0);
    j.member("meets_2x_target_stored", stored_geomean >= 2.0);
    j.key("scaling").beginObject();
    j.member("sequential_seconds", seq.seconds);
    j.member("sequential_expanded", seq.res.nodesExpanded);
    j.key("workers").beginArray();
    for (const ScaleRow &r : srows) {
        j.beginObject();
        j.member("threads", static_cast<std::uint64_t>(r.threads));
        j.member("status", statusName(r.run.res.status));
        j.member("seconds", r.run.seconds);
        j.member("speedup_vs_sequential",
                 r.run.seconds > 0.0 ? seq.seconds / r.run.seconds
                                     : 0.0);
        j.member("speedup_vs_one_worker",
                 r.run.seconds > 0.0
                     ? one_worker_seconds / r.run.seconds
                     : 0.0);
        j.member("nodes_expanded", r.run.res.nodesExpanded);
        j.member("nodes_routed", r.run.res.nodesRouted);
        j.member("max_inbox_depth", r.run.res.maxInboxDepth);
        j.member("incumbent_improvements",
                 r.run.res.incumbentImprovements);
        j.member("peak_memory_bytes", r.run.res.peakMemory);
        j.endObject();
    }
    j.endArray();
    j.member("speedup_at_8_vs_one_worker", speedup8);
    j.member("meets_3x_at_8_target", speedup8 >= 3.0);
    j.endObject();
    j.key("size_wall").beginArray();
    for (const SizeRow &r : wrows) {
        j.beginObject();
        j.member("functions", static_cast<std::uint64_t>(r.funcs));
        j.member("status", statusName(r.run.res.status));
        j.member("stop", stopName(r.run.res.stopCause));
        j.member("makespan", r.run.res.makespan);
        j.member("gap_bound", r.run.res.gapBound);
        j.member("nodes_expanded", r.run.res.nodesExpanded);
        j.member("seconds", r.run.seconds);
        j.endObject();
    }
    j.endArray();
    j.member("max_optimal_functions",
             static_cast<std::uint64_t>(max_optimal));
    j.endObject();
    std::cout << "Wrote " << json_path << "\n";
    return 0;
}
