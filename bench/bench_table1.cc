/**
 * @file
 * Reproduces Table 1: the benchmark inventory.  For each workload we
 * print the configured shape (functions, call-sequence length) and
 * the measured "default time": the simulated make-span under the
 * default (Jikes-style) scheduling scheme, extrapolated to full
 * scale when the trace was scaled down.
 */

#include <iostream>

#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "vm/adaptive_runtime.hh"
#include "vm/cost_benefit.hh"

using namespace jitsched;

int
main()
{
    const std::size_t scale = benchScaleFromEnv(16);
    std::cout << "== Table 1: benchmarks ==\n";
    std::cout << "(traces generated at 1/" << scale
              << " of full length; time column extrapolated)\n";

    AsciiTable t({"program", "parallelism", "#functions",
                  "call seq length", "paper time(s)",
                  "simulated default time(s)"});
    for (const DacapoSpec &spec : dacapoSpecs()) {
        const Workload w = makeDacapoWorkload(spec.name, scale);
        AdaptiveConfig cfg;
        cfg.samplePeriod = defaultSamplePeriod(w);
        const RuntimeResult res =
            runAdaptive(w, buildDefaultEstimates(w), cfg);
        const double full_time =
            toSeconds(res.sim.makespan) *
            (static_cast<double>(spec.numCalls) /
             static_cast<double>(w.numCalls()));
        t.addRow({spec.name, spec.parallel ? "parallel" : "seq",
                  std::to_string(spec.numFunctions),
                  formatCount(spec.numCalls),
                  formatFixed(spec.defaultTimeSec, 1),
                  formatFixed(full_time, 1)});
    }
    t.print(std::cout);
    std::cout << "\nShape check: function counts 543-2194, call "
                 "sequences 467K-43.6M, times in the paper's "
                 "1.5-28.4 s range.\n";
    return 0;
}
