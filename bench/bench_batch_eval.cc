/**
 * @file
 * Throughput of the parallel batch-evaluation engine (src/exec/)
 * versus the sequential path.
 *
 * The job grid mirrors what the figure/ablation sweeps actually do:
 * every Table-1 workload x {IAR, base-only, opt-only} schedules x
 * {1, 2, 4, 8} compile cores.  Three measurements per configuration:
 *
 *  1. sequential: plain simulate() loop (the pre-engine code path);
 *  2. batch(T): BatchEvaluator over a T-thread pool, cold cache;
 *  3. batch(T)+cache: same batch again on the warm cache.
 *
 * Every run cross-checks its make-spans against the sequential
 * reference; any divergence is reported and fails the binary, so
 * this doubles as an end-to-end determinism check on real sweep
 * shapes.
 */

#include <chrono>
#include <iostream>
#include <vector>

#include "core/iar.hh"
#include "core/single_level.hh"
#include "exec/batch_eval.hh"
#include "sim/makespan.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "vm/cost_benefit.hh"

using namespace jitsched;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // anonymous namespace

int
main()
{
    const std::size_t scale = benchScaleFromEnv(16);
    const std::size_t hw = ThreadPool::global().concurrency();

    std::cout << "== Batch-evaluation engine throughput ==\n"
              << "(hardware threads: " << hw << ")\n\n";

    // Build the job grid.  Workloads must outlive the jobs, so they
    // live in a stable deque-like vector reserved up front.
    std::vector<Workload> workloads;
    workloads.reserve(dacapoSpecs().size());
    std::vector<EvalJob> jobs;
    for (const DacapoSpec &spec : dacapoSpecs()) {
        workloads.push_back(makeDacapoWorkload(spec.name, scale));
        const Workload &w = workloads.back();
        const auto cands =
            modelCandidateLevels(w, CostBenefitConfig{});
        const Schedule schedules[] = {
            iarSchedule(w, cands).schedule,
            baseLevelSchedule(w, cands),
            optimizingLevelSchedule(w, cands),
        };
        for (const Schedule &s : schedules)
            for (const std::size_t cores : {1u, 2u, 4u, 8u})
                jobs.push_back({&w, s, {.compileCores = cores}});
    }
    std::cout << "job grid: " << jobs.size() << " evaluations ("
              << workloads.size() << " workloads x 3 schedules x 4 "
              << "core counts)\n\n";

    // Sequential reference.
    const auto seq_start = std::chrono::steady_clock::now();
    std::vector<Tick> reference;
    for (const EvalJob &job : jobs)
        reference.push_back(
            simulate(*job.workload, job.schedule, job.opts)
                .makespan);
    const double seq_time = secondsSince(seq_start);

    AsciiTable t({"configuration", "time", "speedup vs sequential",
                  "identical make-spans"});
    t.addRow({"sequential", strprintf("%.3fs", seq_time), "1.00x",
              "(reference)"});

    bool all_identical = true;
    std::vector<std::size_t> thread_counts{1};
    if (hw > 1)
        thread_counts.push_back(hw);

    for (const std::size_t threads : thread_counts) {
        ThreadPool pool(threads);
        EvalCache cache;
        BatchEvaluator eval(pool, &cache);

        for (const bool warm : {false, true}) {
            const auto start = std::chrono::steady_clock::now();
            const std::vector<SimResult> results =
                eval.evaluate(jobs);
            const double time = secondsSince(start);

            bool identical = true;
            for (std::size_t i = 0; i < jobs.size(); ++i)
                identical &= results[i].makespan == reference[i];
            all_identical &= identical;

            t.addRow({strprintf("batch(%zu threads)%s", threads,
                                warm ? " warm cache" : ""),
                      strprintf("%.3fs", time),
                      strprintf("%.2fx", seq_time / time),
                      identical ? "yes" : "NO"});
            if (warm)
                std::cout << "batch(" << threads
                          << ") cache: " << cache.hits() << " hits / "
                          << cache.misses() << " misses over "
                          << 2 * jobs.size() << " lookups\n";
        }
    }
    std::cout << "\n";
    t.print(std::cout);

    std::cout << "\nReading: cold-cache speedup is the thread-pool "
                 "win (expect ~Tx on T idle cores); the warm-cache "
                 "row is the memoization win sweeps with repeated "
                 "configurations see regardless of core count.\n";

    if (!all_identical) {
        std::cout << "ERROR: batch evaluation diverged from the "
                     "sequential reference\n";
        return 1;
    }
    return 0;
}
