/**
 * @file
 * Reproduces the worked examples of Figs. 1 and 2: the make-spans of
 * schemes s1/s2/s3 on the 4-call sequence, how appending a fifth
 * call flips the winner, and the true optima from exhaustive search
 * and A*.
 *
 * `--trace-out <file>.json` additionally exports the fig1/s3
 * timeline (the paper's headline picture) as a Chrome trace-event
 * document loadable in Perfetto / chrome://tracing.
 */

#include <cstring>
#include <iostream>

#include "core/astar.hh"
#include "core/brute_force.hh"
#include "exec/batch_eval.hh"
#include "obs/schedule_timeline.hh"
#include "sim/makespan.hh"
#include "support/table.hh"
#include "trace/paper_examples.hh"

using namespace jitsched;

int
main(int argc, char **argv)
{
    std::string trace_out;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace-out") == 0 &&
            i + 1 < argc) {
            trace_out = argv[++i];
        } else {
            std::cerr << "usage: bench_fig1_fig2 [--trace-out "
                         "<file>.json]\n";
            return 2;
        }
    }
    std::cout << "== Figures 1 & 2: the scheduling-order examples ==\n";
    std::cout << "Invocation sequences: fig1 = f0 f1 f2 f1,"
                 " fig2 = f0 f1 f2 f1 f2\n\n";

    const Workload fig1 = figure1Workload();
    const Workload fig2 = figure2Workload();

    AsciiTable t({"schedule", "events", "fig1 make-span",
                  "paper fig1", "fig2 make-span", "paper fig2"});

    struct Row
    {
        const char *name;
        Schedule fig1_sched;
        Schedule fig2_sched;
        const char *paper1;
        const char *paper2;
    };
    const Row rows[] = {
        {"s1 (+c21 in fig2)", figureSchemeS1(),
         figureSchemeS1Extended(), "11", "12"},
        {"s2 (+c21 in fig2)", figureSchemeS2(),
         figureSchemeS2Extended(), "12", "13"},
        {"s3", figureSchemeS3(), figureSchemeS3(), "10", "13"},
    };
    // All six example evaluations as one batch.
    std::vector<EvalJob> jobs;
    for (const Row &r : rows) {
        jobs.push_back({&fig1, r.fig1_sched, {}});
        jobs.push_back({&fig2, r.fig2_sched, {}});
    }
    const std::vector<SimResult> sims =
        BatchEvaluator::global().evaluate(jobs);
    for (std::size_t i = 0; i < std::size(rows); ++i) {
        const Row &r = rows[i];
        t.addRow({r.name, r.fig2_sched.toString(fig2),
                  std::to_string(sims[2 * i].makespan), r.paper1,
                  std::to_string(sims[2 * i + 1].makespan),
                  r.paper2});
    }
    t.print(std::cout);

    const BruteForceResult bf1 = bruteForceOptimal(fig1);
    const BruteForceResult bf2 = bruteForceOptimal(fig2);
    const AStarResult as1 = aStarOptimal(fig1);
    const AStarResult as2 = aStarOptimal(fig2);
    std::cout << "\nOptimal make-spans (brute force / A*): fig1 = "
              << bf1.makespan << " / " << as1.makespan
              << "  |  fig2 = " << bf2.makespan << " / "
              << as2.makespan << "\n";
    std::cout << "fig1 optimal schedule: "
              << bf1.schedule.toString(fig1) << "\n";
    std::cout << "fig2 optimal schedule: "
              << bf2.schedule.toString(fig2) << "\n";
    std::cout << "\nShape check: s3 is best on fig1 (10); appending "
                 "one call makes s1+c21 best (12) and s3 worst (13), "
                 "as in the paper.\n";

    if (!trace_out.empty()) {
        obs::writeScheduleTraceFile(trace_out, fig1,
                                    figureSchemeS3(), {});
        std::cout << "wrote fig1/s3 timeline trace to " << trace_out
                  << "\n";
    }
    return 0;
}
