/**
 * @file
 * google-benchmark microbenchmarks of the building blocks: the
 * make-span simulator, the IAR scheduler (its O(N + M log M) claim),
 * the online adaptive runtime, the compile queue, the Zipf sampler
 * and the n-gram predictor.
 */

#include <benchmark/benchmark.h>

#include "core/iar.hh"
#include "predictor/ngram.hh"
#include "sim/compile_queue.hh"
#include "sim/makespan.hh"
#include "trace/synthetic.hh"
#include "vm/adaptive_runtime.hh"
#include "vm/cost_benefit.hh"

namespace jitsched {
namespace {

Workload
workloadOfSize(std::size_t calls)
{
    SyntheticConfig cfg;
    cfg.numFunctions = std::max<std::size_t>(64, calls / 100);
    cfg.numCalls = calls;
    cfg.seed = 5;
    cfg.targetLevel0ExecTime =
        static_cast<Tick>(calls) * 800; // ~0.8 us per call
    return generateSynthetic(cfg);
}

void
BM_Simulate(benchmark::State &state)
{
    const Workload w =
        workloadOfSize(static_cast<std::size_t>(state.range(0)));
    const Schedule s = iarScheduleOracle(w).schedule;
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulate(w, s).makespan);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_Simulate)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void
BM_IarSchedule(benchmark::State &state)
{
    const Workload w =
        workloadOfSize(static_cast<std::size_t>(state.range(0)));
    const auto cands = oracleCandidateLevels(w);
    for (auto _ : state) {
        benchmark::DoNotOptimize(iarSchedule(w, cands).schedule);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_IarSchedule)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void
BM_AdaptiveRuntime(benchmark::State &state)
{
    const Workload w =
        workloadOfSize(static_cast<std::size_t>(state.range(0)));
    const TimeEstimates est = buildDefaultEstimates(w);
    AdaptiveConfig cfg;
    cfg.samplePeriod = defaultSamplePeriod(w);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runAdaptive(w, est, cfg).sim.makespan);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_AdaptiveRuntime)->Arg(10'000)->Arg(100'000);

void
BM_CompileQueue(benchmark::State &state)
{
    const auto cores = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        CompileQueue q(cores);
        for (Tick i = 0; i < 10'000; ++i)
            benchmark::DoNotOptimize(q.submit(i, 100));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_CompileQueue)->Arg(1)->Arg(4)->Arg(16);

void
BM_ZipfSample(benchmark::State &state)
{
    const ZipfSampler zipf(
        static_cast<std::size_t>(state.range(0)), 1.0);
    Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(zipf.sample(rng));
    }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100'000);

void
BM_SyntheticGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        SyntheticConfig cfg;
        cfg.numFunctions = 500;
        cfg.numCalls = static_cast<std::size_t>(state.range(0));
        cfg.seed = 11;
        benchmark::DoNotOptimize(generateSynthetic(cfg).numCalls());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_SyntheticGeneration)->Arg(100'000);

void
BM_NGramTrain(benchmark::State &state)
{
    const Workload w = workloadOfSize(100'000);
    for (auto _ : state) {
        NGramPredictor p(3);
        p.train(w.calls());
        benchmark::DoNotOptimize(p.contextCount());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 100'000);
}
BENCHMARK(BM_NGramTrain);

void
BM_NGramExtrapolate(benchmark::State &state)
{
    const Workload w = workloadOfSize(100'000);
    NGramPredictor p(3);
    p.train(w.calls());
    const std::vector<FuncId> prefix(w.calls().begin(),
                                     w.calls().begin() + 1024);
    Rng rng(13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            p.extrapolateStochastic(prefix, 50'000, rng).size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 50'000);
}
BENCHMARK(BM_NGramExtrapolate);

} // anonymous namespace
} // namespace jitsched

BENCHMARK_MAIN();
