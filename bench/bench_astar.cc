/**
 * @file
 * Reproduces Sec. 6.2.5: the (in)feasibility of A*-search — and
 * measures what the incremental prefix-evaluation engine
 * (core/prefix_sim.hh) buys over re-walking each prefix from t = 0.
 *
 * Part 1 is the paper's experiment.  Their Java A* (plain
 * f(v) = b(v) + e(v), 2 GB heap) solved a 6-function/50-call instance
 * after exploring 96 of ~4 billion paths and ran out of memory beyond
 * 6 unique functions.  Our implementation strengthens the heuristic
 * with the committed wait of the earliest not-yet-compiled call
 * (still admissible) and prunes exact duplicate states, which pushes
 * the wall to ~11 functions — beyond which the open list exhausts the
 * memory budget exactly as the paper describes.  Clever search
 * postpones the exponential blow-up; it cannot remove it (Theorem 2).
 *
 * Part 2 runs capped searches over the nine Fig. 5/6 (Table 1)
 * workloads twice — incremental resume vs. the legacy from-scratch
 * evalPrefix() path — and reports evaluations/sec for both.  The two
 * modes perform the identical search (same nodes, same f values, bit
 * for bit), so the ratio isolates the evaluation engine.
 *
 * Both parts land in BENCH_astar.json for machines; `--smoke` prints
 * only the deterministic counters of a fixed instance, which
 * scripts/check.sh --bench-smoke diffs against
 * bench/expectations/astar_smoke.txt.
 */

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/astar.hh"
#include "core/brute_force.hh"
#include "exec/thread_pool.hh"
#include "harness.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "trace/synthetic.hh"

using namespace jitsched;

namespace {

/**
 * An upper bound on the number of complete compilation sequences for
 * n functions at 2 levels: permutations of the 2n compile events
 * (what the paper's "12! paths" figure counts for n = 6).
 */
double
pathSpace(std::size_t n)
{
    double total = 1.0;
    for (std::size_t i = 1; i <= 2 * n; ++i)
        total *= static_cast<double>(i);
    return total;
}

Workload
feasibilityWorkload(std::size_t funcs)
{
    SyntheticConfig cfg;
    cfg.numFunctions = funcs;
    cfg.numCalls = 50 + funcs * 2;
    cfg.numLevels = 2;
    cfg.seed = 40 + funcs;
    return generateSynthetic(cfg);
}

/** One feasibility-table row, kept for the JSON artifact. */
struct FeasRow
{
    std::size_t funcs = 0;
    AStarResult res;
    AStarResult inc; ///< same search with the IAR incumbent bound
};

/** One throughput measurement: a capped search, timed. */
struct TimedRun
{
    AStarResult res;
    double seconds = 0.0;

    double
    evalsPerSec() const
    {
        return seconds > 0.0
                   ? static_cast<double>(res.evaluations) / seconds
                   : 0.0;
    }

    double
    expandedPerSec() const
    {
        return seconds > 0.0
                   ? static_cast<double>(res.nodesExpanded) / seconds
                   : 0.0;
    }
};

TimedRun
timedSearch(const Workload &w, const AStarConfig &cfg)
{
    TimedRun run;
    const auto t0 = std::chrono::steady_clock::now();
    run.res = aStarOptimal(w, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    run.seconds =
        std::chrono::duration<double>(t1 - t0).count();
    return run;
}

/** One Fig. 5/6 workload's incremental-vs-scratch comparison. */
struct ThroughputRow
{
    std::string name;
    std::size_t funcs = 0;
    std::size_t calls = 0;
    TimedRun incremental;
    TimedRun scratch;

    double
    speedup() const
    {
        return scratch.evalsPerSec() > 0.0
                   ? incremental.evalsPerSec() /
                         scratch.evalsPerSec()
                   : 0.0;
    }
};

const char *
statusName(AStarStatus s)
{
    switch (s) {
    case AStarStatus::Optimal:
        return "optimal";
    case AStarStatus::Incumbent:
        return "incumbent";
    case AStarStatus::OutOfMemory:
        return "out-of-memory";
    case AStarStatus::ExpansionCap:
        return "expansion-cap";
    }
    return "?";
}

void
writeRunJson(JsonWriter &j, const TimedRun &run)
{
    j.beginObject();
    j.member("status", statusName(run.res.status));
    j.member("nodes_expanded", run.res.nodesExpanded);
    j.member("nodes_generated", run.res.nodesGenerated);
    j.member("nodes_pruned", run.res.nodesPruned);
    j.member("evaluations", run.res.evaluations);
    j.member("seconds", run.seconds);
    j.member("evals_per_sec", run.evalsPerSec());
    j.member("expanded_per_sec", run.expandedPerSec());
    j.member("peak_memory_bytes", run.res.peakMemory);
    j.member("peak_arena_bytes", run.res.peakArenaBytes);
    j.endObject();
}

/**
 * Deterministic counters on fixed instances: everything here is a
 * pure function of the search code, so the expectation file pins the
 * exact node counts — any unintended change to expansion order,
 * pruning, or evaluation totals shows up as a diff.
 */
int
runSmoke()
{
    std::cout << "astar-smoke v1\n";
    for (const std::size_t funcs : {4, 5, 6}) {
        const Workload w = feasibilityWorkload(funcs);

        AStarConfig pruned;
        pruned.memoryBudget = 256ull << 20;
        const AStarResult a = aStarOptimal(w, pruned);

        AStarConfig scratch;
        scratch.incrementalEval = false;
        scratch.memoryBudget = 256ull << 20;
        const AStarResult b = aStarOptimal(w, scratch);

        AStarConfig inc = pruned;
        inc.incumbentPruning = true;
        const AStarResult c = aStarOptimal(w, inc);

        const BruteForceResult bf = bruteForceOptimal(w);

        std::cout << "workload functions=" << funcs
                  << " calls=" << w.numCalls() << "\n";
        std::cout << "  status=" << statusName(a.status)
                  << " makespan=" << a.makespan << "\n";
        std::cout << "  nodes_expanded=" << a.nodesExpanded
                  << " nodes_generated=" << a.nodesGenerated
                  << " nodes_pruned=" << a.nodesPruned
                  << " evaluations=" << a.evaluations << "\n";
        std::cout << "  incumbent_pruned_expanded="
                  << c.nodesExpanded << " incumbent_cuts="
                  << c.nodesPrunedIncumbent
                  << " incumbent_makespan_agrees="
                  << (c.status == AStarStatus::Optimal &&
                              c.makespan == a.makespan
                          ? "yes"
                          : "NO")
                  << "\n";
        std::cout << "  scratch_makespan_agrees="
                  << (b.status == AStarStatus::Optimal &&
                              b.makespan == a.makespan
                          ? "yes"
                          : "NO")
                  << " brute_force_agrees="
                  << (bf.complete && bf.makespan == a.makespan
                          ? "yes"
                          : "NO")
                  << "\n";
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0)
        return runSmoke();

    // ---- Part 1: the paper's feasibility experiment. ----
    std::cout << "== Sec. 6.2.5: A*-search feasibility ==\n";
    std::cout << "(random 2-level instances, ~50-80 calls; memory "
                 "budget 512 MiB, expansion cap 2M as a time "
                 "guard)\n";

    AsciiTable t({"#functions", "status", "nodes expanded",
                  "dup-pruned", "inc-pruned expanded",
                  "inc reduction", "path space (2n)!",
                  "fraction explored", "peak memory",
                  "optimal == brute force"});

    std::vector<FeasRow> feas;
    for (std::size_t funcs = 3; funcs <= 11; ++funcs) {
        const Workload w = feasibilityWorkload(funcs);

        AStarConfig acfg;
        acfg.memoryBudget = 512ull << 20;
        acfg.maxExpansions = 2'000'000;
        acfg.pool = &ThreadPool::global();
        const AStarResult res = aStarOptimal(w, acfg);

        // The same search seeded with the IAR make-span as an
        // incumbent bound: identical optimum, fewer expansions.
        AStarConfig icfg = acfg;
        icfg.incumbentPruning = true;
        const AStarResult inc = aStarOptimal(w, icfg);
        const double reduction =
            inc.nodesExpanded > 0
                ? static_cast<double>(res.nodesExpanded) /
                      static_cast<double>(inc.nodesExpanded)
                : 0.0;

        std::string matches = "-";
        if (res.status == AStarStatus::Optimal && funcs <= 5) {
            const BruteForceResult bf = bruteForceOptimal(w);
            matches = bf.complete && bf.makespan == res.makespan
                          ? "yes"
                          : "NO";
        }

        const double space = pathSpace(funcs);
        t.addRow({std::to_string(funcs), statusName(res.status),
                  formatCount(res.nodesExpanded),
                  formatCount(res.nodesPruned),
                  formatCount(inc.nodesExpanded),
                  strprintf("%.1fx", reduction),
                  strprintf("%.2e", space),
                  strprintf("%.2e",
                            static_cast<double>(res.nodesExpanded) /
                                space),
                  strprintf("%.1f MiB",
                            static_cast<double>(res.peakMemory) /
                                (1 << 20)),
                  matches});
        feas.push_back({funcs, res, inc});
    }
    t.print(std::cout);
    std::cout << "Paper reference: optimal after a tiny explored "
                 "fraction on a 6-function instance (96 paths of "
                 "~12!); out of memory (2 GB Java heap) beyond 6 "
                 "functions.  The strengthened-but-admissible "
                 "heuristic plus duplicate-state pruning shifts the "
                 "wall a few functions outward; the exponential "
                 "blow-up remains, as the strong NP-completeness "
                 "predicts.\n\n";

    // ---- Part 2: incremental vs. from-scratch evaluation. ----
    const std::size_t scale = benchScaleFromEnv(16);
    std::cout << "== Incremental vs. from-scratch prefix evaluation "
                 "(Fig. 5/6 workloads, 1/"
              << scale << " scale) ==\n";
    std::cout << "(identical capped searches; only the evaluation "
                 "engine differs, so evals/sec isolates it)\n";

    // Deep enough that prefixes commit real work, small enough that
    // the slow baseline finishes: the *fraction* of time saved is
    // what the ratio reports, and it is stable in the cap.
    constexpr std::uint64_t kCap = 120;

    AsciiTable tt({"benchmark", "evaluations", "incremental ev/s",
                   "from-scratch ev/s", "speedup",
                   "peak arena"});
    std::vector<ThroughputRow> rows;
    double log_sum = 0.0;
    for (const DacapoSpec &spec : dacapoSpecs()) {
        const Workload w = makeDacapoWorkload(spec.name, scale);

        // Single-threaded on purpose: per-evaluation cost is the
        // quantity under test, not pool scaling.
        AStarConfig inc;
        inc.memoryBudget = 1ull << 30;
        inc.maxExpansions = kCap;
        AStarConfig scratch = inc;
        scratch.incrementalEval = false;

        ThroughputRow row;
        row.name = spec.name;
        row.funcs = w.numFunctions();
        row.calls = w.numCalls();
        row.incremental = timedSearch(w, inc);
        row.scratch = timedSearch(w, scratch);

        tt.addRow({row.name,
                   formatCount(row.incremental.res.evaluations),
                   formatCount(static_cast<std::uint64_t>(
                       row.incremental.evalsPerSec())),
                   formatCount(static_cast<std::uint64_t>(
                       row.scratch.evalsPerSec())),
                   strprintf("%.1fx", row.speedup()),
                   strprintf("%.1f MiB",
                             static_cast<double>(
                                 row.incremental.res.peakArenaBytes) /
                                 (1 << 20))});
        log_sum += std::log(row.speedup());
        rows.push_back(std::move(row));
    }
    const double geomean =
        std::exp(log_sum / static_cast<double>(rows.size()));
    tt.print(std::cout);
    std::cout << "Geometric-mean speedup: "
              << strprintf("%.1fx", geomean)
              << (geomean >= 5.0 ? "  (>= 5x target met)"
                                 : "  (below 5x target!)")
              << "\n";

    // ---- Machine-readable artifact. ----
    const char *json_path = "BENCH_astar.json";
    std::ofstream out(json_path);
    JsonWriter j(out);
    j.beginObject();
    j.member("bench", "astar");
    j.member("scale", static_cast<std::uint64_t>(scale));
    j.member("bytes_per_node",
             feas.empty() ? std::uint64_t{0}
                          : feas.front().res.bytesPerNode);
    j.key("feasibility").beginArray();
    for (const FeasRow &r : feas) {
        j.beginObject();
        j.member("functions", static_cast<std::uint64_t>(r.funcs));
        j.member("status", statusName(r.res.status));
        j.member("nodes_expanded", r.res.nodesExpanded);
        j.member("nodes_generated", r.res.nodesGenerated);
        j.member("nodes_pruned", r.res.nodesPruned);
        j.member("evaluations", r.res.evaluations);
        j.member("peak_memory_bytes", r.res.peakMemory);
        j.member("peak_arena_bytes", r.res.peakArenaBytes);
        j.member("peak_open_bytes", r.res.peakOpenBytes);
        j.member("peak_table_bytes", r.res.peakTableBytes);
        j.member("incumbent_pruned_expanded", r.inc.nodesExpanded);
        j.member("incumbent_cuts", r.inc.nodesPrunedIncumbent);
        j.endObject();
    }
    j.endArray();
    j.key("throughput").beginArray();
    for (const ThroughputRow &r : rows) {
        j.beginObject();
        j.member("benchmark", r.name);
        j.member("functions", static_cast<std::uint64_t>(r.funcs));
        j.member("calls", static_cast<std::uint64_t>(r.calls));
        j.key("incremental");
        writeRunJson(j, r.incremental);
        j.key("from_scratch");
        writeRunJson(j, r.scratch);
        j.member("speedup_evals_per_sec", r.speedup());
        j.endObject();
    }
    j.endArray();
    j.member("speedup_geomean", geomean);
    j.member("meets_5x_target", geomean >= 5.0);
    j.endObject();
    std::cout << "Wrote " << json_path << "\n";
    return 0;
}
