/**
 * @file
 * Reproduces Sec. 6.2.5: the (in)feasibility of A*-search.
 *
 * The paper's Java A* (plain f(v) = b(v) + e(v), 2 GB heap) solved a
 * 6-function/50-call instance after exploring 96 of ~4 billion paths
 * and ran out of memory beyond 6 unique functions.  Our
 * implementation strengthens the heuristic with the committed wait
 * of the earliest not-yet-compiled call (still admissible), which
 * also solves a 6-function instance in double digits of expansions
 * and pushes the wall to ~9 functions — beyond which the open list
 * exhausts the memory budget exactly as the paper describes.
 * Clever search postpones the exponential blow-up; it cannot remove
 * it (Theorem 2).
 */

#include <cmath>
#include <iostream>

#include "core/astar.hh"
#include "core/brute_force.hh"
#include "exec/thread_pool.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/synthetic.hh"

using namespace jitsched;

namespace {

/**
 * An upper bound on the number of complete compilation sequences for
 * n functions at 2 levels: permutations of the 2n compile events
 * (what the paper's "12! paths" figure counts for n = 6).
 */
double
pathSpace(std::size_t n)
{
    double total = 1.0;
    for (std::size_t i = 1; i <= 2 * n; ++i)
        total *= static_cast<double>(i);
    return total;
}

} // anonymous namespace

int
main()
{
    std::cout << "== Sec. 6.2.5: A*-search feasibility ==\n";
    std::cout << "(random 2-level instances, ~50-80 calls; memory "
                 "budget 512 MiB, expansion cap 2M as a time "
                 "guard)\n";

    AsciiTable t({"#functions", "status", "nodes expanded",
                  "path space (2n)!", "fraction explored",
                  "peak memory", "optimal == brute force"});

    for (std::size_t funcs = 3; funcs <= 11; ++funcs) {
        SyntheticConfig cfg;
        cfg.numFunctions = funcs;
        cfg.numCalls = 50 + funcs * 2;
        cfg.numLevels = 2;
        cfg.seed = 40 + funcs;
        const Workload w = generateSynthetic(cfg);

        AStarConfig acfg;
        acfg.memoryBudget = 512ull << 20;
        acfg.maxExpansions = 2'000'000;
        acfg.pool = &ThreadPool::global();
        const AStarResult res = aStarOptimal(w, acfg);

        const char *status =
            res.status == AStarStatus::Optimal ? "optimal"
            : res.status == AStarStatus::OutOfMemory
                ? "OUT OF MEMORY"
                : "expansion cap";

        std::string matches = "-";
        if (res.status == AStarStatus::Optimal && funcs <= 5) {
            const BruteForceResult bf = bruteForceOptimal(w);
            matches = bf.complete && bf.makespan == res.makespan
                          ? "yes"
                          : "NO";
        }

        const double space = pathSpace(funcs);
        t.addRow({std::to_string(funcs), status,
                  formatCount(res.nodesExpanded),
                  strprintf("%.2e", space),
                  strprintf("%.2e",
                            static_cast<double>(res.nodesExpanded) /
                                space),
                  strprintf("%.1f MiB",
                            static_cast<double>(res.peakMemory) /
                                (1 << 20)),
                  matches});
    }
    t.print(std::cout);
    std::cout << "Paper reference: optimal after a tiny explored "
                 "fraction on a 6-function instance (96 paths of "
                 "~12!); out of memory (2 GB Java heap) beyond 6 "
                 "functions.  The strengthened-but-admissible "
                 "heuristic here shifts the wall a few functions "
                 "outward; the exponential blow-up remains, as the "
                 "strong NP-completeness predicts.\n";
    return 0;
}
