/**
 * @file
 * Reproduces Fig. 7: speedups from concurrent JIT compilation when
 * the IAR schedule is used, with 1/2/4/8/16 compilation cores.
 *
 * Paper shape to match: the gains are minor — average speedups no
 * greater than ~7%, largest single case ~13% — because a good
 * schedule already hides most compilation time.
 */

#include <iostream>
#include <vector>

#include "core/iar.hh"
#include "exec/batch_eval.hh"
#include "harness.hh"
#include "sim/makespan.hh"
#include "support/stats.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "vm/cost_benefit.hh"

using namespace jitsched;

int
main()
{
    const std::size_t scale = benchScaleFromEnv(16);
    const std::vector<std::size_t> core_counts{1, 2, 4, 8, 16};

    std::cout << "== Figure 7: concurrent JIT under IAR schedules =="
              << "\n(speedup of make-span vs 1 compile core)\n";

    AsciiTable t({"benchmark", "2 cores", "4 cores", "8 cores",
                  "16 cores"});
    std::vector<std::vector<double>> speedups(core_counts.size());
    double max_speedup = 1.0;

    for (const DacapoSpec &spec : dacapoSpecs()) {
        const Workload w = makeDacapoWorkload(spec.name, scale);
        CostBenefitConfig mcfg;
        const auto cands = modelCandidateLevels(w, mcfg);
        const Schedule s = iarSchedule(w, cands).schedule;

        // One batch job per core count: the whole sweep fans out on
        // the shared evaluation pool.
        std::vector<EvalJob> jobs;
        for (const std::size_t cores : core_counts)
            jobs.push_back({&w, s, {.compileCores = cores}});
        std::vector<double> spans;
        for (const SimResult &r :
             BatchEvaluator::global().evaluate(jobs))
            spans.push_back(static_cast<double>(r.makespan));

        std::vector<std::string> row{spec.name};
        for (std::size_t i = 1; i < core_counts.size(); ++i) {
            const double sp = spans[0] / spans[i];
            speedups[i].push_back(sp);
            max_speedup = std::max(max_speedup, sp);
            row.push_back(formatFixed(sp, 3) + "x");
        }
        t.addRow(row);
    }

    std::vector<std::string> avg_row{"average"};
    for (std::size_t i = 1; i < core_counts.size(); ++i)
        avg_row.push_back(formatFixed(mean(speedups[i]), 3) + "x");
    t.addSeparator();
    t.addRow(avg_row);
    t.print(std::cout);

    std::cout << "Max single speedup: " << formatFixed(max_speedup, 3)
              << "x  |  avg at 16 cores: "
              << formatFixed(mean(speedups.back()), 3) << "x\n";
    std::cout << "Paper reference: average speedups <= ~7%, largest "
                 "~13% — concurrent JIT adds little once the "
                 "schedule is good.\n";
    return 0;
}
